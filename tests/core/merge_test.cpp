// Tests for the Merge procedure: the three cases of Section 3.4 on
// hand-constructed configurations, plus structural properties.

#include "core/merge.hpp"

#include <gtest/gtest.h>

#include "core/skyline.hpp"
#include "geometry/angle.hpp"
#include "geometry/radial.hpp"

namespace mldcs::core {
namespace {

using geom::Disk;
using geom::kTwoPi;
using geom::Vec2;

constexpr Vec2 kO{0.0, 0.0};

std::vector<Arc> full_circle(std::size_t disk) {
  return {Arc{0.0, kTwoPi, disk}};
}

TEST(OuterDiskAtTest, PicksRadiallyFartherDisk) {
  const std::vector<Disk> disks{{{0.5, 0}, 1.0}, {{-0.5, 0}, 1.0}};
  EXPECT_EQ(outer_disk_at(disks, kO, 0.0, 0, 1), 0u);   // east: disk 0 bulges
  EXPECT_EQ(outer_disk_at(disks, kO, geom::kPi, 0, 1), 1u);  // west: disk 1
}

TEST(OuterDiskAtTest, TieBreaksByRadiusThenIndex) {
  const std::vector<Disk> same{{{0, 0}, 1.0}, {{0, 0}, 1.0}};
  EXPECT_EQ(outer_disk_at(same, kO, 1.0, 0, 1), 0u);
  EXPECT_EQ(outer_disk_at(same, kO, 1.0, 1, 0), 0u);  // order-insensitive

  // Internally tangent at angle 0: radial tie there, larger radius wins.
  const std::vector<Disk> tangent{{{1.0, 0.0}, 1.0}, {{0.0, 0.0}, 2.0}};
  EXPECT_EQ(outer_disk_at(tangent, kO, 0.0, 0, 1), 1u);
}

TEST(MergeTest, EmptyInputsPassThrough) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}};
  const auto sl = full_circle(0);
  EXPECT_EQ(merge_skylines({}, sl, disks, kO), sl);
  EXPECT_EQ(merge_skylines(sl, {}, disks, kO), sl);
  EXPECT_TRUE(merge_skylines({}, {}, disks, kO).empty());
}

TEST(MergeTest, Case1NoIntersectionOuterWins) {
  // Concentric disks never cross: merged skyline is just the bigger disk.
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{0, 0}, 2.0}};
  const auto merged =
      merge_skylines(full_circle(0), full_circle(1), disks, kO);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].disk, 1u);
  EXPECT_TRUE(Skyline::well_formed(merged, 2));
}

TEST(MergeTest, Case3TwoCrossingsProduceTwoArcs) {
  // Two unit disks offset east/west cross at two points; each contributes
  // one arc of the merged skyline... accounting for the +x-axis split, the
  // east disk's arc is split into two pieces (start and end of the list).
  const std::vector<Disk> disks{{{0.5, 0.0}, 1.0}, {{-0.5, 0.0}, 1.0}};
  const auto merged =
      merge_skylines(full_circle(0), full_circle(1), disks, kO);
  EXPECT_TRUE(Skyline::well_formed(merged, 2));
  ASSERT_EQ(merged.size(), 3u);
  EXPECT_EQ(merged[0].disk, 0u);  // [0, pi/2): east disk
  EXPECT_EQ(merged[1].disk, 1u);  // [pi/2, 3pi/2): west disk
  EXPECT_EQ(merged[2].disk, 0u);  // [3pi/2, 2pi): east disk again
  EXPECT_NEAR(merged[0].end, geom::kPi / 2, 1e-9);
  EXPECT_NEAR(merged[1].end, 3 * geom::kPi / 2, 1e-9);
}

TEST(MergeTest, CoincidentDisksKeepSmallestIndex) {
  const std::vector<Disk> disks{{{0, 0}, 1.0}, {{0, 0}, 1.0}};
  const auto merged =
      merge_skylines(full_circle(0), full_circle(1), disks, kO);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].disk, 0u);
}

TEST(MergeTest, InternalTangencyIsNotACrossing) {
  // Disk 0 internally tangent to disk 1 at (2, 0): the tangent point must
  // not split the skyline into spurious arcs.
  const std::vector<Disk> disks{{{1.0, 0.0}, 1.0}, {{0.0, 0.0}, 2.0}};
  const auto merged =
      merge_skylines(full_circle(0), full_circle(1), disks, kO);
  ASSERT_EQ(merged.size(), 1u);
  EXPECT_EQ(merged[0].disk, 1u);
}

TEST(MergeTest, ResultIsUpperEnvelopePointwise) {
  const std::vector<Disk> disks{{{0.7, 0.1}, 1.3}, {{-0.4, -0.5}, 1.6}};
  const auto merged =
      merge_skylines(full_circle(0), full_circle(1), disks, kO);
  EXPECT_TRUE(Skyline::well_formed(merged, 2));
  const Skyline sky(kO, merged);
  for (int k = 0; k < 720; ++k) {
    const double theta = kTwoPi * k / 720.0;
    EXPECT_NEAR(sky.radius_at(disks, theta),
                geom::radial_envelope(disks, kO, theta), 1e-9)
        << "theta=" << theta;
  }
}

TEST(MergeTest, StatsAreAccumulated) {
  const std::vector<Disk> disks{{{0.5, 0.0}, 1.0}, {{-0.5, 0.0}, 1.0}};
  MergeStats stats;
  (void)merge_skylines(full_circle(0), full_circle(1), disks, kO, &stats);
  EXPECT_GT(stats.spans, 0u);
  EXPECT_GT(stats.circle_intersections, 0u);
  EXPECT_GT(stats.arcs_emitted, 0u);
}

TEST(MergeTest, MergeIsCommutativeOnCoverage) {
  const std::vector<Disk> disks{{{0.6, 0.2}, 1.1}, {{-0.3, 0.5}, 1.4}};
  const auto ab = merge_skylines(full_circle(0), full_circle(1), disks, kO);
  const auto ba = merge_skylines(full_circle(1), full_circle(0), disks, kO);
  const Skyline sab(kO, ab);
  const Skyline sba(kO, ba);
  for (int k = 0; k < 360; ++k) {
    const double theta = kTwoPi * k / 360.0;
    EXPECT_NEAR(sab.radius_at(disks, theta), sba.radius_at(disks, theta),
                1e-9);
  }
}

TEST(MergeTest, MergeWithSelfIsIdentityOnCoverage) {
  const std::vector<Disk> disks{{{0.5, 0.0}, 1.0}, {{-0.5, 0.0}, 1.0}};
  const auto once = merge_skylines(full_circle(0), full_circle(1), disks, kO);
  const auto twice = merge_skylines(once, once, disks, kO);
  EXPECT_EQ(once, twice);
}

}  // namespace
}  // namespace mldcs::core
