// Tests for the redundant-reception accounting (the Ni et al. broadcast
// storm metric) in both simulators.

#include <gtest/gtest.h>

#include "broadcast/broadcast_sim.hpp"
#include "broadcast/self_pruning.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph chain(std::size_t n) {
  std::vector<net::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({static_cast<net::NodeId>(i),
                     {static_cast<double>(i), 0.0}, 1.0});
  }
  return net::DiskGraph::build(std::move(nodes));
}

TEST(RedundancyTest, SingleNodeHasNoRedundancy) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 1.0}});
  EXPECT_EQ(simulate_broadcast(g, 0, Scheme::kFlooding).redundant_receptions,
            0u);
}

TEST(RedundancyTest, FloodingOnChainCountsBackEdges) {
  // On a path with flooding everyone transmits; every reception except the
  // n-1 first-time deliveries is redundant: total receptions = 2*edges.
  const std::size_t n = 7;
  const auto g = chain(n);
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.redundant_receptions, 2 * g.edge_count() - (r.delivered - 1));
}

TEST(RedundancyTest, FloodingRedundancyIdentityOnRandomGraphs) {
  // When every node transmits exactly once, receptions = 2 * edges within
  // the reached component, so redundancy = 2*edges - (delivered - 1).
  net::DeploymentParams p;
  p.target_avg_degree = 8;
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    sim::Xoshiro256 rng(sim::derive_seed(4242, seed));
    auto g = net::generate_graph(p, rng);
    const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
    if (!g.connected()) continue;  // identity needs the single component
    EXPECT_EQ(r.redundant_receptions,
              2 * g.edge_count() - (r.delivered - 1))
        << "seed " << seed;
  }
}

TEST(RedundancyTest, SchemesReduceRedundancyVsFlooding) {
  net::DeploymentParams p;
  p.target_avg_degree = 12;
  sim::Xoshiro256 rng(99);
  const auto g = net::generate_graph(p, rng);
  const auto flood = simulate_broadcast(g, 0, Scheme::kFlooding);
  for (const Scheme s : {Scheme::kSkyline, Scheme::kGreedy}) {
    const auto r = simulate_broadcast(g, 0, s);
    EXPECT_LE(r.redundant_receptions, flood.redundant_receptions)
        << scheme_name(s);
  }
}

TEST(RedundancyTest, PrunedBroadcastReducesRedundancyFurther) {
  net::DeploymentParams p;
  p.target_avg_degree = 12;
  sim::Xoshiro256 rng(101);
  const auto g = net::generate_graph(p, rng);
  const auto pure = simulate_broadcast(g, 0, Scheme::kSkyline);
  const auto pruned = simulate_pruned_broadcast(g, 0, Scheme::kSkyline);
  EXPECT_LE(pruned.redundant_receptions, pure.redundant_receptions);
  EXPECT_EQ(pruned.delivered, pure.delivered);
}

}  // namespace
}  // namespace mldcs::bcast
