// Tests for the network-wide broadcast simulator.

#include "broadcast/broadcast_sim.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph chain(std::size_t n) {
  std::vector<net::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({static_cast<net::NodeId>(i),
                     {static_cast<double>(i), 0.0},
                     1.0});
  }
  return net::DiskGraph::build(std::move(nodes));
}

net::DiskGraph random_graph(std::uint64_t seed, double degree, bool hetero) {
  net::DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  sim::Xoshiro256 rng(seed);
  return net::generate_graph(p, rng);
}

TEST(BroadcastSimTest, SingleNodeBroadcast) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 1.0}});
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.transmissions, 1u);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.reachable, 1u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_EQ(r.max_hops, 0u);
}

TEST(BroadcastSimTest, InvalidSourceYieldsEmptyResult) {
  const auto g = chain(3);
  const auto r = simulate_broadcast(g, 99, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.transmissions, 0u);
}

TEST(BroadcastSimTest, FloodingReachesWholeChainWithNTransmissions) {
  const auto g = chain(6);
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 6u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_EQ(r.transmissions, 6u);  // flooding: everyone retransmits
  EXPECT_EQ(r.max_hops, 5u);
}

TEST(BroadcastSimTest, HopCountIsGraphDistance) {
  const auto g = chain(5);
  const auto r = simulate_broadcast(g, 2, Scheme::kFlooding);
  EXPECT_EQ(r.max_hops, 2u);  // middle node: farthest end is 2 hops
}

TEST(BroadcastSimTest, DisconnectedNodesNotDelivered) {
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {1, 0}, 1.0}, {2, {9, 9}, 1.0}});
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.reachable, 2u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 1.0);
}

TEST(BroadcastSimTest, GreedyDeliversEverywhereWithFewerTransmissions) {
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const auto flood = simulate_broadcast(g, 0, Scheme::kFlooding);
    const auto greedy = simulate_broadcast(g, 0, Scheme::kGreedy);
    EXPECT_TRUE(flood.full_delivery());
    EXPECT_TRUE(greedy.full_delivery())
        << "greedy 2-hop cover guarantees network-wide delivery";
    EXPECT_LE(greedy.transmissions, flood.transmissions);
    EXPECT_EQ(greedy.delivered, flood.delivered);
  }
}

TEST(BroadcastSimTest, SkylineDeliversEverywhereInHomogeneousNetworks) {
  // In homogeneous networks coverage == linkage, so the skyline set
  // dominates the 2-hop neighborhood and the broadcast completes.
  for (std::uint64_t seed = 120; seed < 126; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const auto r = simulate_broadcast(g, 0, Scheme::kSkyline);
    EXPECT_TRUE(r.full_delivery()) << "seed " << seed;
  }
}

TEST(BroadcastSimTest, FloodingNeverBeatenOnDeliveryByAnyScheme) {
  for (std::uint64_t seed = 130; seed < 134; ++seed) {
    const auto g = random_graph(seed, 8, true);
    const auto flood = simulate_broadcast(g, 0, Scheme::kFlooding);
    for (Scheme s : {Scheme::kSkyline, Scheme::kGreedy}) {
      const auto r = simulate_broadcast(g, 0, s);
      EXPECT_LE(r.delivered, flood.delivered);
      EXPECT_LE(r.transmissions, flood.transmissions);
    }
  }
}

TEST(BroadcastSimTest, PhysicalReceptionReachesCoveredNonNeighbors) {
  // Big node 0 covers node 1 but they are not linked; physical reception
  // still delivers, link reception does not.
  const auto g = net::DiskGraph::build({{0, {0, 0}, 5.0}, {1, {2, 0}, 1.0}});
  const auto link = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kBidirectionalLink);
  const auto phys = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kPhysicalCoverage);
  EXPECT_EQ(link.delivered, 1u);
  EXPECT_EQ(phys.delivered, 2u);
}

TEST(BroadcastSimTest, TransmissionCountsAreDeterministic) {
  const auto g = random_graph(140, 10, true);
  const auto a = simulate_broadcast(g, 0, Scheme::kSkyline);
  const auto b = simulate_broadcast(g, 0, Scheme::kSkyline);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.max_hops, b.max_hops);
}

}  // namespace
}  // namespace mldcs::bcast
