// Tests for the network-wide broadcast simulator.

#include "broadcast/broadcast_sim.hpp"

#include <gtest/gtest.h>

#include <utility>

#include "net/topology.hpp"
#include "obs/event_log.hpp"
#include "obs/event_replay.hpp"
#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph chain(std::size_t n) {
  std::vector<net::Node> nodes;
  for (std::size_t i = 0; i < n; ++i) {
    nodes.push_back({static_cast<net::NodeId>(i),
                     {static_cast<double>(i), 0.0},
                     1.0});
  }
  return net::DiskGraph::build(std::move(nodes));
}

net::DiskGraph random_graph(std::uint64_t seed, double degree, bool hetero) {
  net::DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  sim::Xoshiro256 rng(seed);
  return net::generate_graph(p, rng);
}

TEST(BroadcastSimTest, SingleNodeBroadcast) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 1.0}});
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.transmissions, 1u);
  EXPECT_EQ(r.delivered, 1u);
  EXPECT_EQ(r.reachable, 1u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_EQ(r.max_hops, 0u);
}

TEST(BroadcastSimTest, InvalidSourceYieldsEmptyResult) {
  const auto g = chain(3);
  const auto r = simulate_broadcast(g, 99, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 0u);
  EXPECT_EQ(r.transmissions, 0u);
}

TEST(BroadcastSimTest, FloodingReachesWholeChainWithNTransmissions) {
  const auto g = chain(6);
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 6u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_EQ(r.transmissions, 6u);  // flooding: everyone retransmits
  EXPECT_EQ(r.max_hops, 5u);
}

TEST(BroadcastSimTest, HopCountIsGraphDistance) {
  const auto g = chain(5);
  const auto r = simulate_broadcast(g, 2, Scheme::kFlooding);
  EXPECT_EQ(r.max_hops, 2u);  // middle node: farthest end is 2 hops
}

TEST(BroadcastSimTest, DisconnectedNodesNotDelivered) {
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {1, 0}, 1.0}, {2, {9, 9}, 1.0}});
  const auto r = simulate_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.delivered, 2u);
  EXPECT_EQ(r.reachable, 2u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_DOUBLE_EQ(r.delivery_ratio(), 1.0);
}

TEST(BroadcastSimTest, GreedyDeliversEverywhereWithFewerTransmissions) {
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const auto flood = simulate_broadcast(g, 0, Scheme::kFlooding);
    const auto greedy = simulate_broadcast(g, 0, Scheme::kGreedy);
    EXPECT_TRUE(flood.full_delivery());
    EXPECT_TRUE(greedy.full_delivery())
        << "greedy 2-hop cover guarantees network-wide delivery";
    EXPECT_LE(greedy.transmissions, flood.transmissions);
    EXPECT_EQ(greedy.delivered, flood.delivered);
  }
}

TEST(BroadcastSimTest, SkylineDeliversEverywhereInHomogeneousNetworks) {
  // In homogeneous networks coverage == linkage, so the skyline set
  // dominates the 2-hop neighborhood and the broadcast completes.
  for (std::uint64_t seed = 120; seed < 126; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const auto r = simulate_broadcast(g, 0, Scheme::kSkyline);
    EXPECT_TRUE(r.full_delivery()) << "seed " << seed;
  }
}

TEST(BroadcastSimTest, FloodingNeverBeatenOnDeliveryByAnyScheme) {
  for (std::uint64_t seed = 130; seed < 134; ++seed) {
    const auto g = random_graph(seed, 8, true);
    const auto flood = simulate_broadcast(g, 0, Scheme::kFlooding);
    for (Scheme s : {Scheme::kSkyline, Scheme::kGreedy}) {
      const auto r = simulate_broadcast(g, 0, s);
      EXPECT_LE(r.delivered, flood.delivered);
      EXPECT_LE(r.transmissions, flood.transmissions);
    }
  }
}

TEST(BroadcastSimTest, PhysicalReceptionReachesCoveredNonNeighbors) {
  // Big node 0 covers node 1 but they are not linked; physical reception
  // still delivers, link reception does not.
  const auto g = net::DiskGraph::build({{0, {0, 0}, 5.0}, {1, {2, 0}, 1.0}});
  const auto link = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kBidirectionalLink);
  const auto phys = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kPhysicalCoverage);
  EXPECT_EQ(link.delivered, 1u);
  EXPECT_EQ(phys.delivered, 2u);
}

// Asymmetric radii under physical coverage: four collinear nodes where the
// big source covers two nodes it is not linked to.
//
//   0:(0,0) r=3.0   1:(1,0) r=1.5   2:(2.4,0) r=1.0   3:(5.5,0) r=1.0
//
// Links (dist <= min radii): only 0-1.  reachable_from(0) = {0,1} = 2.
// Physical flooding from 0: 0's tx covers 1 and 2 (both new); 1's tx
// covers 0 and 2 (both duplicates); 2's tx covers nobody; 3 is silent.
TEST(BroadcastSimTest, AsymmetricRadiiPhysicalCoverageCountsStormExactly) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 3.0},
                                        {1, {1, 0}, 1.5},
                                        {2, {2.4, 0}, 1.0},
                                        {3, {5.5, 0}, 1.0}});
  const auto phys = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kPhysicalCoverage);
  EXPECT_EQ(phys.transmissions, 3u);
  EXPECT_EQ(phys.delivered, 3u);
  EXPECT_EQ(phys.reachable, 2u);
  EXPECT_EQ(phys.redundant_receptions, 2u);
  EXPECT_EQ(phys.max_hops, 1u);
  // More delivered than link-reachable: the ratio exceeds 1 exactly when
  // one-sided coverage outruns the bidirectional link graph.
  EXPECT_DOUBLE_EQ(phys.delivery_ratio(), 1.5);

  // Same graph under link reception: 2 is unreachable, and only 1 hears
  // the relayed copy back.
  const auto link = simulate_broadcast(g, 0, Scheme::kFlooding,
                                       ReceptionModel::kBidirectionalLink);
  EXPECT_EQ(link.transmissions, 2u);
  EXPECT_EQ(link.delivered, 2u);
  EXPECT_EQ(link.redundant_receptions, 1u);
  EXPECT_DOUBLE_EQ(link.delivery_ratio(), 1.0);
}

#if MLDCS_ENABLE_TELEMETRY

TEST(BroadcastSimTest, AsymmetricScenarioReplayDerivationAgrees) {
  // The same hand-counted numbers must fall out of the event stream: the
  // recorder is a second, independent derivation of the storm metrics.
  const auto g = net::DiskGraph::build({{0, {0, 0}, 3.0},
                                        {1, {1, 0}, 1.5},
                                        {2, {2.4, 0}, 1.0},
                                        {3, {5.5, 0}, 1.0}});
  obs::events_stop();
  obs::events_clear();
  obs::events_start();
  const auto sim = simulate_broadcast(g, 0, Scheme::kFlooding,
                                      ReceptionModel::kPhysicalCoverage);
  obs::events_stop();
  const auto replays = obs::replay_broadcasts(obs::events_snapshot());
  obs::events_clear();
  ASSERT_EQ(replays.size(), 1u);
  const obs::ReplayedBroadcast& r = replays.front();
  EXPECT_EQ(r.transmissions, sim.transmissions);
  EXPECT_EQ(r.delivered, sim.delivered);
  EXPECT_EQ(r.max_hops, sim.max_hops);
  EXPECT_EQ(r.reachable, sim.reachable);
  EXPECT_EQ(r.redundant_receptions, sim.redundant_receptions);

  // Per-node fates pin down *which* receptions were redundant.
  EXPECT_EQ(r.fate(2).delivered_by, 0u);
  EXPECT_EQ(r.fate(2).hop, 1u);
  EXPECT_EQ(r.fate(2).duplicates_heard, 1u);  // 1's copy
  EXPECT_EQ(r.fate(0).duplicates_heard, 1u);  // 1's copy back at the source
  EXPECT_FALSE(r.fate(3).received);
  const auto by_tx = obs::redundancy_by_transmitter(r);
  ASSERT_EQ(by_tx.size(), 1u);
  EXPECT_EQ(by_tx.front(), (std::pair<net::NodeId, std::uint64_t>{1, 2}));
}

#endif  // MLDCS_ENABLE_TELEMETRY

TEST(BroadcastSimTest, TransmissionCountsAreDeterministic) {
  const auto g = random_graph(140, 10, true);
  const auto a = simulate_broadcast(g, 0, Scheme::kSkyline);
  const auto b = simulate_broadcast(g, 0, Scheme::kSkyline);
  EXPECT_EQ(a.transmissions, b.transmissions);
  EXPECT_EQ(a.delivered, b.delivered);
  EXPECT_EQ(a.max_hops, b.max_hops);
}

}  // namespace
}  // namespace mldcs::bcast
