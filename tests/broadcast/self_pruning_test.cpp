// Tests for the receiver-based self-pruning baseline and the hybrid
// (sender-designation + self-pruning) broadcast.

#include "broadcast/self_pruning.hpp"

#include <gtest/gtest.h>

#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph random_graph(std::uint64_t seed, double degree, bool hetero) {
  net::DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  sim::Xoshiro256 rng(seed);
  return net::generate_graph(p, rng);
}

TEST(SelfPruningRuleTest, PrunedWhenNeighborhoodIsSubset) {
  // Triangle: every node's neighborhood is covered by any sender.
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {0.5, 0}, 1.0}, {2, {0.25, 0.4}, 1.0}});
  EXPECT_FALSE(self_pruning_would_forward(g, 0, 1));
  EXPECT_FALSE(self_pruning_would_forward(g, 0, 2));
}

TEST(SelfPruningRuleTest, ForwardsWhenReceiverExtendsCoverage) {
  // Chain 0-1-2: node 1 has a neighbor (2) the sender 0 cannot reach.
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {1, 0}, 1.0}, {2, {2, 0}, 1.0}});
  EXPECT_TRUE(self_pruning_would_forward(g, 0, 1));
  EXPECT_FALSE(self_pruning_would_forward(g, 1, 0));  // 0 adds nothing
  EXPECT_FALSE(self_pruning_would_forward(g, 1, 2));  // 2 adds nothing
}

TEST(SelfPruningBroadcastTest, DeliveryPreservedOnChain) {
  std::vector<net::Node> nodes;
  for (int i = 0; i < 8; ++i) {
    nodes.push_back({static_cast<net::NodeId>(i),
                     {static_cast<double>(i), 0.0}, 1.0});
  }
  const auto g = net::DiskGraph::build(std::move(nodes));
  const auto r = simulate_pruned_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_TRUE(r.full_delivery());
  // The last node adds nothing and must be pruned.
  EXPECT_LT(r.transmissions, 8u);
}

TEST(SelfPruningBroadcastTest, FullDeliveryOnRandomGraphs) {
  for (std::uint64_t seed = 300; seed < 306; ++seed) {
    for (const bool hetero : {false, true}) {
      const auto g = random_graph(seed, 10, hetero);
      const auto pruned = simulate_pruned_broadcast(g, 0, Scheme::kFlooding);
      EXPECT_TRUE(pruned.full_delivery())
          << "seed " << seed << " hetero " << hetero;
    }
  }
}

TEST(SelfPruningBroadcastTest, HybridNeverTransmitsMoreThanPureScheme) {
  for (std::uint64_t seed = 310; seed < 315; ++seed) {
    const auto g = random_graph(seed, 12, false);
    for (const Scheme s : {Scheme::kFlooding, Scheme::kSkyline,
                           Scheme::kGreedy}) {
      const auto pure = simulate_broadcast(g, 0, s);
      const auto hybrid = simulate_pruned_broadcast(g, 0, s);
      EXPECT_LE(hybrid.transmissions, pure.transmissions)
          << scheme_name(s) << " seed " << seed;
      EXPECT_EQ(hybrid.delivered, pure.delivered)
          << scheme_name(s) << " seed " << seed;
    }
  }
}

TEST(SelfPruningBroadcastTest, HybridReducesTransmissions) {
  // Wu-Li self-pruning is geometrically weak at moderate density (a
  // receiver nearly always owns a private neighbor), so the reduction is
  // real but modest; assert the guaranteed direction plus that pruning
  // actually fires somewhere in the sample.
  sim::RunningStats pure_tx, hybrid_tx;
  for (std::uint64_t seed = 320; seed < 326; ++seed) {
    const auto g = random_graph(seed, 12, false);
    pure_tx.add(static_cast<double>(
        simulate_broadcast(g, 0, Scheme::kSkyline).transmissions));
    hybrid_tx.add(static_cast<double>(
        simulate_pruned_broadcast(g, 0, Scheme::kSkyline).transmissions));
  }
  EXPECT_LT(hybrid_tx.mean(), pure_tx.mean());
  EXPECT_GT(pure_tx.sum() - hybrid_tx.sum(), 0.0);
}

TEST(SelfPruningBroadcastTest, SingleNodeAndInvalidSource) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 1.0}});
  const auto r = simulate_pruned_broadcast(g, 0, Scheme::kFlooding);
  EXPECT_EQ(r.transmissions, 1u);
  EXPECT_TRUE(r.full_delivery());
  EXPECT_EQ(simulate_pruned_broadcast(g, 9, Scheme::kFlooding).delivered, 0u);
}

}  // namespace
}  // namespace mldcs::bcast
