// Tests for the five forwarding-set algorithms: guarantees, orderings
// (optimal <= greedy <= flooding), scheme metadata, and the skyline set's
// coverage property.

#include "broadcast/forwarding.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/validate.hpp"
#include "geometry/radial.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph random_graph(std::uint64_t seed, double degree, bool hetero) {
  net::DeploymentParams p;
  p.target_avg_degree = degree;
  p.model = hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  sim::Xoshiro256 rng(seed);
  return net::generate_graph(p, rng);
}

bool dominates_two_hop(const net::DiskGraph& g, const LocalView& view,
                       const std::vector<net::NodeId>& fwd) {
  for (net::NodeId w : view.two_hop) {
    bool covered = false;
    for (net::NodeId v : fwd) {
      if (g.linked(v, w)) {
        covered = true;
        break;
      }
    }
    if (!covered) return false;
  }
  return true;
}

TEST(SchemeMetadataTest, NamesAndCapabilities) {
  EXPECT_EQ(scheme_name(Scheme::kFlooding), "flooding");
  EXPECT_EQ(scheme_name(Scheme::kSkyline), "skyline");
  EXPECT_EQ(scheme_name(Scheme::kSelectingForwardingSet), "sel-fwd-set");
  EXPECT_EQ(scheme_name(Scheme::kGreedy), "greedy");
  EXPECT_EQ(scheme_name(Scheme::kOptimal), "optimal");

  EXPECT_FALSE(requires_two_hop_info(Scheme::kFlooding));
  EXPECT_FALSE(requires_two_hop_info(Scheme::kSkyline));
  EXPECT_TRUE(requires_two_hop_info(Scheme::kGreedy));
  EXPECT_TRUE(requires_two_hop_info(Scheme::kOptimal));
  EXPECT_TRUE(requires_two_hop_info(Scheme::kSelectingForwardingSet));

  EXPECT_TRUE(supports_heterogeneous(Scheme::kSkyline));
  EXPECT_FALSE(supports_heterogeneous(Scheme::kSelectingForwardingSet));
}

TEST(FloodingTest, ForwardingSetIsAllNeighbors) {
  const auto g = random_graph(3, 8, true);
  const LocalView view = local_view(g, 0);
  EXPECT_EQ(forwarding_set(g, view, Scheme::kFlooding), view.one_hop);
}

TEST(LocalViewTest, DiskSetIsValidLocalSet) {
  const auto g = random_graph(5, 10, true);
  const LocalView view = local_view(g, 0);
  const auto disks = local_disk_set(g, view);
  ASSERT_EQ(disks.size(), view.one_hop.size() + 1);
  EXPECT_TRUE(geom::is_local_disk_set(disks, g.node(0).pos));
}

TEST(LocalViewTest, TwoHopCoverageIndexesAreValid) {
  const auto g = random_graph(6, 8, true);
  const LocalView view = local_view(g, 0);
  const auto covers = two_hop_coverage(g, view);
  ASSERT_EQ(covers.size(), view.one_hop.size());
  for (std::size_t i = 0; i < covers.size(); ++i) {
    for (std::uint32_t w : covers[i]) {
      ASSERT_LT(w, view.two_hop.size());
      EXPECT_TRUE(g.linked(view.one_hop[i], view.two_hop[w]));
    }
  }
}

TEST(SkylineForwardingTest, CoversSameAreaAsAllNeighbors) {
  // The defining property: the skyline forwarding set plus the relay's own
  // disk covers the same area as all 1-hop disks together.
  for (std::uint64_t seed : {10u, 11u, 12u, 13u}) {
    const auto g = random_graph(seed, 10, true);
    const LocalView view = local_view(g, 0);
    const auto disks = local_disk_set(g, view);
    const auto fwd = skyline_forwarding_set(g, view);
    // Subset indices: relay (0) + chosen neighbors.
    std::vector<std::size_t> subset{0};
    for (net::NodeId v : fwd) {
      const auto it =
          std::lower_bound(view.one_hop.begin(), view.one_hop.end(), v);
      subset.push_back(
          1 + static_cast<std::size_t>(
                  std::distance(view.one_hop.begin(), it)));
    }
    EXPECT_TRUE(
        core::is_disk_cover_set(subset, disks, g.node(0).pos, 2048))
        << "seed " << seed;
  }
}

TEST(SkylineForwardingTest, NeverLargerThanFlooding) {
  for (std::uint64_t seed = 20; seed < 30; ++seed) {
    const auto g = random_graph(seed, 12, true);
    const LocalView view = local_view(g, 0);
    EXPECT_LE(skyline_forwarding_set(g, view).size(), view.one_hop.size());
  }
}

TEST(GreedyAndOptimalTest, BothDominateTwoHopNeighbors) {
  for (std::uint64_t seed = 40; seed < 46; ++seed) {
    for (bool hetero : {false, true}) {
      const auto g = random_graph(seed, 10, hetero);
      const LocalView view = local_view(g, 0);
      const auto greedy = greedy_forwarding_set(g, view);
      const auto optimal = optimal_forwarding_set(g, view);
      EXPECT_TRUE(dominates_two_hop(g, view, greedy)) << "seed " << seed;
      EXPECT_TRUE(dominates_two_hop(g, view, optimal)) << "seed " << seed;
      EXPECT_LE(optimal.size(), greedy.size());
    }
  }
}

TEST(CalinescuTest, ThrowsOnHeterogeneousNetwork) {
  // Build a graph that is definitely heterogeneous around node 0.
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 1.0}, {1, {0.5, 0}, 1.7}, {2, {-0.5, 0}, 1.0}});
  const LocalView view = local_view(g, 0);
  EXPECT_THROW(calinescu_forwarding_set(g, view), std::invalid_argument);
}

TEST(CalinescuTest, DominatesTwoHopInHomogeneousNetworks) {
  for (std::uint64_t seed = 50; seed < 58; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const LocalView view = local_view(g, 0);
    const auto fwd = calinescu_forwarding_set(g, view);
    EXPECT_TRUE(dominates_two_hop(g, view, fwd)) << "seed " << seed;
    EXPECT_LE(fwd.size(), view.one_hop.size());
  }
}

TEST(CalinescuTest, EmptyTwoHopGivesEmptySet) {
  // Complete graph: everyone is 1-hop of everyone.
  const auto g = net::DiskGraph::build(
      {{0, {0, 0}, 2.0}, {1, {0.3, 0}, 2.0}, {2, {0, 0.3}, 2.0}});
  const LocalView view = local_view(g, 0);
  EXPECT_TRUE(view.two_hop.empty());
  EXPECT_TRUE(calinescu_forwarding_set(g, view).empty());
  EXPECT_TRUE(greedy_forwarding_set(g, view).empty());
  EXPECT_TRUE(optimal_forwarding_set(g, view).empty());
}

TEST(ForwardingSetOrderingTest, PaperFigure51Ordering) {
  // The robust ordering of Figure 5.1: optimal <= greedy <= flooding and
  // optimal <= skyline <= flooding, per relay.
  for (std::uint64_t seed = 60; seed < 70; ++seed) {
    const auto g = random_graph(seed, 10, false);
    const LocalView view = local_view(g, 0);
    const auto sky = forwarding_set(g, view, Scheme::kSkyline);
    const auto greedy = forwarding_set(g, view, Scheme::kGreedy);
    const auto optimal = forwarding_set(g, view, Scheme::kOptimal);
    const auto flood = forwarding_set(g, view, Scheme::kFlooding);
    EXPECT_LE(optimal.size(), greedy.size());
    EXPECT_LE(greedy.size(), flood.size());
    EXPECT_LE(sky.size(), flood.size());
  }
}

TEST(ForwardingSetTest, ResultsAreSortedUniqueNeighbors) {
  const auto g = random_graph(80, 10, true);
  const LocalView view = local_view(g, 0);
  for (Scheme s : {Scheme::kFlooding, Scheme::kSkyline, Scheme::kGreedy,
                   Scheme::kOptimal}) {
    const auto fwd = forwarding_set(g, view, s);
    EXPECT_TRUE(std::is_sorted(fwd.begin(), fwd.end()));
    EXPECT_EQ(std::adjacent_find(fwd.begin(), fwd.end()), fwd.end());
    for (net::NodeId v : fwd) {
      EXPECT_TRUE(std::binary_search(view.one_hop.begin(), view.one_hop.end(),
                                     v));
    }
  }
}

TEST(ForwardingSetTest, ConvenienceOverloadMatchesViewOverload) {
  const auto g = random_graph(90, 8, true);
  const LocalView view = local_view(g, 0);
  EXPECT_EQ(forwarding_set(g, 0, Scheme::kSkyline),
            forwarding_set(g, view, Scheme::kSkyline));
}

TEST(ForwardingSetTest, IsolatedRelayHasEmptySets) {
  const auto g = net::DiskGraph::build({{0, {0, 0}, 1.0}, {1, {9, 9}, 1.0}});
  const LocalView view = local_view(g, 0);
  for (Scheme s : {Scheme::kFlooding, Scheme::kSkyline, Scheme::kGreedy,
                   Scheme::kOptimal}) {
    EXPECT_TRUE(forwarding_set(g, view, s).empty());
  }
}

}  // namespace
}  // namespace mldcs::bcast
