// Tests for make_cache_watchdog: the bound watchdog must stay silent over
// a long clean mobility run (the cache is correct, so any bark is a false
// positive) and must catch an injected slot corruption within one sampling
// period when every relay is sampled.

#include "broadcast/cache_watchdog.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "net/dynamic_disk_graph.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::bcast {
namespace {

net::DeploymentParams tiny_deploy() {
  net::DeploymentParams p;
  p.side = 6.0;  // ~50 nodes: 500 steps of audit stay cheap
  p.target_avg_degree = 8;
  p.model = net::RadiusModel::kUniform;
  return p;
}

TEST(CacheWatchdogTest, SilentAcrossFiveHundredCleanMobilitySteps) {
  sim::Xoshiro256 rng(71);
  net::WaypointParams wp;
  net::MobileNetwork mobile(tiny_deploy(), wp, rng);
  net::DynamicDiskGraph dyn{
      std::vector<net::Node>(mobile.nodes().begin(), mobile.nodes().end())};
  sim::ThreadPool pool(2);
  SkylineCache cache(dyn, pool);

  auto wd = make_cache_watchdog(dyn, cache, {.period = 16, .samples = 8});
  for (int t = 0; t < 512; ++t) {
    mobile.step(1.0, rng);
    cache.update(dyn.apply(mobile.nodes(), mobile.moved_last_step()));
    EXPECT_TRUE(wd.on_step(cache.last_update_event())) << "step " << t;
  }
  EXPECT_EQ(wd.steps(), 512u);
  EXPECT_EQ(wd.checks(), 32u);
  EXPECT_EQ(wd.sampled(), 32u * 8u);
  EXPECT_TRUE(wd.clean());
  EXPECT_EQ(wd.last_mismatch_step(), 0u);
}

TEST(CacheWatchdogTest, InjectedCorruptionCaughtWithinOnePeriod) {
  sim::Xoshiro256 rng(72);
  net::WaypointParams wp;
  net::MobileNetwork mobile(tiny_deploy(), wp, rng);
  net::DynamicDiskGraph dyn{
      std::vector<net::Node>(mobile.nodes().begin(), mobile.nodes().end())};
  sim::ThreadPool pool(2);
  SkylineCache cache(dyn, pool);

  // Sampling the whole population each check makes "within one period"
  // deterministic: the first check after the injection must bark.
  const auto n = static_cast<std::uint32_t>(dyn.size());
  auto wd = make_cache_watchdog(dyn, cache, {.period = 8, .samples = n});

  // Inject right after the step-23 update: the corruption lands mid-run
  // with no later cache.update between it and the step-24 check, so a
  // recompute of the victim's slot cannot silently repair the injection
  // before the watchdog looks (which would make the test flaky).
  const net::NodeId victim = n / 2;
  bool corrupted = false;
  std::uint64_t corrupted_at = 0;
  for (int t = 0; t < 64; ++t) {
    mobile.step(1.0, rng);
    cache.update(dyn.apply(mobile.nodes(), mobile.moved_last_step()));
    if (t == 23) {
      cache.corrupt_slot_for_testing(victim);
      corrupted = true;
      corrupted_at = wd.steps() + 1;
    }
    const bool ok = wd.on_step(cache.last_update_event());
    if (!corrupted) {
      EXPECT_TRUE(ok) << "false positive before injection at step " << t;
    }
    if (!wd.clean()) break;
  }

  ASSERT_FALSE(wd.clean()) << "corruption was never detected";
  EXPECT_LE(wd.last_mismatch_step() - corrupted_at, wd.config().period)
      << "detection took more than one sampling period";
  const auto& bad = wd.last_mismatched_relays();
  EXPECT_NE(std::find(bad.begin(), bad.end(), victim), bad.end())
      << "watchdog barked but did not name the corrupted relay";
}

TEST(CacheWatchdogTest, CorruptionHelperFlipsBothSlotShapes) {
  // The test-only corruptor must disturb populated and empty slots alike,
  // else watchdog tests could silently pick an un-corruptible victim.
  std::vector<net::Node> nodes{
      {0, {0.0, 0.0}, 5.0},  // dominates 1: skyline forwarding set empty
      {1, {1.0, 0.0}, 2.0},
      {2, {4.0, 0.0}, 2.0}};
  net::DynamicDiskGraph dyn{std::vector<net::Node>(nodes)};
  sim::ThreadPool pool(1);
  SkylineCache cache(dyn, pool);

  ASSERT_GT(cache.forwarding_set(1).size(), 0u);
  const auto before = cache.forwarding_set(1).size();
  cache.corrupt_slot_for_testing(1);
  EXPECT_EQ(cache.forwarding_set(1).size(), before - 1);

  ASSERT_EQ(cache.forwarding_set(0).size(), 0u);
  cache.corrupt_slot_for_testing(0);
  EXPECT_EQ(cache.forwarding_set(0).size(), 1u);
}

}  // namespace
}  // namespace mldcs::bcast
