// Tests for SkylineCache: cached forwarding sets must stay bit-identical to
// a from-scratch compute_all_skylines after every mobility step, and the
// dirty-relay rule must be local (a far-away move leaves a relay untouched).

#include "broadcast/skyline_cache.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <span>
#include <vector>

#include "broadcast/all_skylines.hpp"
#include "core/invariants.hpp"
#include "net/dynamic_disk_graph.hpp"
#include "net/mobility.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"
#include "support/alloc_guard.hpp"

namespace mldcs::bcast {
namespace {

net::DeploymentParams small_deploy() {
  net::DeploymentParams p;
  p.target_avg_degree = 8;
  p.model = net::RadiusModel::kUniform;
  return p;
}

void expect_matches_fresh(const SkylineCache& cache,
                          const net::DynamicDiskGraph& dyn,
                          sim::ThreadPool& pool, const char* where) {
  const net::DiskGraph g = dyn.to_disk_graph();
  const AllSkylines fresh = compute_all_skylines(g, pool);
  ASSERT_EQ(cache.size(), fresh.size()) << where;
  ASSERT_EQ(cache.total_forwarders(), fresh.total_forwarders()) << where;
  for (net::NodeId u = 0; u < dyn.size(); ++u) {
    const auto got = cache.forwarding_set(u);
    const auto want = fresh.forwarding_set(u);
    ASSERT_TRUE(std::equal(got.begin(), got.end(), want.begin(), want.end()))
        << where << ": forwarding set mismatch at relay " << u;
    ASSERT_EQ(cache.arc_count(u), fresh.arc_count(u))
        << where << ": arc count mismatch at relay " << u;
  }
}

TEST(SkylineCacheTest, InitialSweepMatchesComputeAllSkylines) {
  sim::Xoshiro256 rng(31);
  sim::ThreadPool pool(2);
  const net::DynamicDiskGraph dyn{
      net::generate_deployment(small_deploy(), rng)};
  const SkylineCache cache(dyn, pool);
  expect_matches_fresh(cache, dyn, pool, "initial");
  EXPECT_EQ(cache.recompute_count(), 0u);  // initial sweep is not counted
}

/// Long differential run across mobility regimes and seeds: after every
/// incremental update the cache must equal a from-scratch sweep.
TEST(SkylineCacheTest, LongRunMatchesFromScratch) {
  struct Regime {
    const char* name;
    net::WaypointParams wp;
  };
  std::vector<Regime> regimes(3);
  regimes[0].name = "default";
  regimes[1].name = "pause_heavy";
  regimes[1].wp.v_min = 0.02;
  regimes[1].wp.v_max = 0.1;
  regimes[1].wp.pause = 10.0;
  regimes[1].wp.max_leg = 1.0;
  regimes[1].wp.steady_state_init = true;
  regimes[2].name = "high_speed";
  regimes[2].wp.v_min = 0.5;
  regimes[2].wp.v_max = 2.0;
  regimes[2].wp.pause = 0.0;

  sim::ThreadPool pool(4);
  for (const Regime& regime : regimes) {
    for (const std::uint64_t seed : {41u, 42u, 43u}) {
      sim::Xoshiro256 rng(seed);
      net::MobileNetwork mobile(small_deploy(), regime.wp, rng);
      net::DynamicDiskGraph dyn{std::vector<net::Node>(
          mobile.nodes().begin(), mobile.nodes().end())};
      SkylineCache cache(dyn, pool);
      for (int t = 0; t < 50; ++t) {
        mobile.step(1.0, rng);
        const auto& delta = dyn.apply(mobile.nodes(), mobile.moved_last_step());
        cache.update(delta);
        // Verifying every step across 3 regimes x 3 seeds is the point of
        // the test but O(n^2-ish); check a rolling prefix plus every 5th.
        if (t < 10 || t % 5 == 0) {
          expect_matches_fresh(cache, dyn, pool, regime.name);
        }
      }
      expect_matches_fresh(cache, dyn, pool, regime.name);
    }
  }
}

TEST(SkylineCacheTest, FarAwayMoveLeavesRelayClean) {
  // Two well-separated clusters; moving a node inside the right cluster
  // must not dirty (or change) any relay of the left cluster.
  std::vector<net::Node> nodes{
      {0, {0.0, 0.0}, 1.0},  {1, {0.8, 0.0}, 1.2}, {2, {0.4, 0.6}, 1.0},
      {3, {50.0, 0.0}, 1.0}, {4, {50.8, 0.0}, 1.1}, {5, {50.4, 0.6}, 1.0}};
  net::DynamicDiskGraph dyn{std::vector<net::Node>(nodes)};
  sim::ThreadPool pool(1);
  SkylineCache cache(dyn, pool);

  const std::vector<net::NodeId> before(cache.forwarding_set(0).begin(),
                                        cache.forwarding_set(0).end());
  nodes[4].pos = {50.9, 0.3};  // jiggle inside the right cluster
  const auto& delta = dyn.apply(nodes);
  cache.update(delta);

  const auto dirty = cache.last_dirty();
  for (const net::NodeId u : {0u, 1u, 2u}) {
    EXPECT_FALSE(std::binary_search(dirty.begin(), dirty.end(), u))
        << "left-cluster relay " << u << " was needlessly recomputed";
  }
  EXPECT_TRUE(std::binary_search(dirty.begin(), dirty.end(),
                                 static_cast<net::NodeId>(4)));
  const auto after = cache.forwarding_set(0);
  EXPECT_TRUE(
      std::equal(after.begin(), after.end(), before.begin(), before.end()));
  expect_matches_fresh(cache, dyn, pool, "after far move");
}

TEST(SkylineCacheTest, NoOpUpdateRecomputesNothing) {
  sim::Xoshiro256 rng(32);
  std::vector<net::Node> nodes = net::generate_deployment(small_deploy(), rng);
  net::DynamicDiskGraph dyn{std::vector<net::Node>(nodes)};
  sim::ThreadPool pool(2);
  SkylineCache cache(dyn, pool);
  const auto& delta = dyn.apply(nodes);  // no motion
  cache.update(delta);
  EXPECT_TRUE(cache.last_dirty().empty());
  EXPECT_EQ(cache.recompute_count(), 0u);
}

TEST(SkylineCacheTest, SlotOverflowAndCompactionStayCorrect) {
  // A hub whose neighbor count grows step by step: its slot must outgrow
  // its slack repeatedly, and an aggressive compaction threshold forces
  // repacks — through all of which the cache must stay exact.
  std::vector<net::Node> nodes;
  nodes.push_back({0, {0.0, 0.0}, 10.0});  // hub hears everyone
  const std::size_t kSatellites = 24;
  for (std::size_t i = 1; i <= kSatellites; ++i) {
    // Start far away (no links), radius large enough to link when close.
    nodes.push_back({static_cast<net::NodeId>(i),
                     {40.0 + 3.0 * static_cast<double>(i), 0.0},
                     10.0 + 0.01 * static_cast<double>(i)});
  }
  net::DynamicDiskGraph dyn{std::vector<net::Node>(nodes)};
  sim::ThreadPool pool(2);
  SkylineCache::Config cfg;
  cfg.compaction_threshold = 0.05;  // compact eagerly
  SkylineCache cache(dyn, pool, cfg);

  // Walk satellites into the hub's range one per step, on a ring so each
  // contributes a distinct skyline arc (growing forwarding set).
  for (std::size_t i = 1; i <= kSatellites; ++i) {
    const double angle =
        2.0 * 3.14159265358979 * static_cast<double>(i - 1) /
        static_cast<double>(kSatellites);
    nodes[i].pos = {8.0 * std::cos(angle), 8.0 * std::sin(angle)};
    const auto& delta = dyn.apply(nodes);
    cache.update(delta);
    expect_matches_fresh(cache, dyn, pool, "growing hub");
  }
  EXPECT_GT(cache.compaction_count(), 0u);

  // Now scatter them again — sets shrink, dead space accrues, compaction
  // keeps the store bounded.
  const std::size_t peak_store = cache.store_size();
  for (std::size_t i = 1; i <= kSatellites; ++i) {
    nodes[i].pos = {40.0 + 3.0 * static_cast<double>(i), 0.0};
    const auto& delta = dyn.apply(nodes);
    cache.update(delta);
  }
  expect_matches_fresh(cache, dyn, pool, "scattered again");
  EXPECT_LE(cache.store_size(), peak_store);
}

TEST(SkylineCacheTest, ResultIndependentOfThreadCount) {
  sim::Xoshiro256 rng(33);
  net::WaypointParams wp;
  net::MobileNetwork mobile(small_deploy(), wp, rng);
  const std::vector<net::Node> start(mobile.nodes().begin(),
                                     mobile.nodes().end());

  sim::ThreadPool pool1(1);
  sim::ThreadPool pool4(4);
  net::DynamicDiskGraph dyn1{std::vector<net::Node>(start)};
  net::DynamicDiskGraph dyn4{std::vector<net::Node>(start)};
  SkylineCache cache1(dyn1, pool1);
  SkylineCache cache4(dyn4, pool4);

  for (int t = 0; t < 10; ++t) {
    mobile.step(1.0, rng);
    cache1.update(dyn1.apply(mobile.nodes()));
    cache4.update(dyn4.apply(mobile.nodes()));
  }
  ASSERT_EQ(cache1.size(), cache4.size());
  EXPECT_EQ(cache1.store_size(), cache4.store_size());
  for (net::NodeId u = 0; u < cache1.size(); ++u) {
    const auto a = cache1.forwarding_set(u);
    const auto b = cache4.forwarding_set(u);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end()));
    ASSERT_EQ(cache1.arc_count(u), cache4.arc_count(u));
  }
}

/// The incremental-update contract measured, not just commented: with a
/// 1-thread pool (chunk dispatch runs inline, no type-erased task objects)
/// a warmed-up cache absorbs topology churn without a single heap
/// allocation.  "Steady state" here means the network oscillates inside an
/// envelope it has visited before: the per-chunk scratch and the slotted
/// store reached their high-water marks during warm-up, so every later set
/// fits its slot in place.  (A random walk that keeps exploring *new*
/// configurations legitimately appends to the store — that growth is
/// amortized by slot slack, not zero.)  Cross-checks the static
/// hot-no-alloc rule on SkylineCache::update (tools/analyze/), which
/// cannot see through the ThreadPool dispatch.
TEST(SkylineCacheTest, SteadyStateUpdateIsAllocationFree) {
  if (!test::alloc_probe_active()) GTEST_SKIP() << "allocator owned by ASan";
  if (core::kInvariantChecksEnabled) {
    GTEST_SKIP() << "invariant diagnostics allocate by design (ALLOC_OK)";
  }
  sim::Xoshiro256 rng(47);
  const std::vector<net::Node> at_rest =
      net::generate_deployment(small_deploy(), rng);
  std::vector<net::Node> displaced = at_rest;
  for (std::size_t i = 0; i < displaced.size(); i += 3) {
    displaced[i].pos.x += 0.3;  // enough drift to change links and mark
    displaced[i].pos.y -= 0.2;  // every third node dirty each flip
  }

  net::DynamicDiskGraph dyn{std::vector<net::Node>(at_rest)};
  sim::ThreadPool pool(1);
  SkylineCache cache(dyn, pool);

  // Warm-up: oscillate until every buffer and store slot has seen both
  // configurations and sits at its high-water mark.
  for (int t = 0; t < 6; ++t) {
    cache.update(dyn.apply(t % 2 == 0 ? displaced : at_rest));
  }

  std::uint64_t allocs = 0;
  std::uint64_t updates_with_dirty = 0;
  for (int t = 0; t < 6; ++t) {
    const std::span<const net::Node> next = t % 2 == 0 ? displaced : at_rest;
    const test::AllocGuard guard;
    cache.update(dyn.apply(next));
    allocs += guard.count();
    updates_with_dirty += cache.last_dirty().empty() ? 0u : 1u;
  }
  EXPECT_EQ(allocs, 0u)
      << "warmed-up SkylineCache::update allocated on the steady state";
  EXPECT_GT(updates_with_dirty, 0u)
      << "oscillation produced no dirty relays: the zero reading proved "
         "nothing";
}

TEST(SkylineCacheTest, PositiveToleranceSkipsSubToleranceJitter) {
  std::vector<net::Node> nodes{
      {0, {0.0, 0.0}, 1.0}, {1, {0.8, 0.0}, 1.0}, {2, {0.4, 0.6}, 1.0}};
  net::DynamicDiskGraph dyn{std::vector<net::Node>(nodes)};
  sim::ThreadPool pool(1);
  SkylineCache::Config cfg;
  cfg.position_tolerance = 0.05;
  SkylineCache cache(dyn, pool, cfg);

  // Jitter node 1 by well under the tolerance: no recompute.
  nodes[1].pos = {0.81, 0.0};
  cache.update(dyn.apply(nodes));
  EXPECT_TRUE(cache.last_dirty().empty());

  // Accumulated drift: repeated sub-tolerance moves eventually exceed the
  // tolerance relative to the *committed* position and trigger a recompute.
  bool recomputed = false;
  for (int i = 2; i <= 8 && !recomputed; ++i) {
    nodes[1].pos = {0.80 + 0.01 * i, 0.0};
    cache.update(dyn.apply(nodes));
    recomputed = !cache.last_dirty().empty();
  }
  EXPECT_TRUE(recomputed) << "accumulated drift never dirtied the relay";
}

}  // namespace
}  // namespace mldcs::bcast
