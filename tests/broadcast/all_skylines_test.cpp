// compute_all_skylines (the batched all-relay MLDCS API) against the
// per-relay skyline_forwarding_set reference, across deployment models and
// thread-pool sizes.  The batch path shares the Merge core but none of the
// per-relay plumbing (LocalView, Skyline objects), so this is a real
// differential test of the CSR assembly and the per-worker workspace reuse.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "broadcast/all_skylines.hpp"
#include "broadcast/forwarding.hpp"
#include "broadcast/local_view.hpp"
#include "core/skyline_dc.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/thread_pool.hpp"

namespace mldcs::bcast {
namespace {

net::DiskGraph make_graph(bool hetero, double degree, std::uint64_t seed) {
  net::DeploymentParams p;
  p.model =
      hetero ? net::RadiusModel::kUniform : net::RadiusModel::kHomogeneous;
  p.target_avg_degree = degree;
  sim::Xoshiro256 rng(seed);
  return net::generate_graph(p, rng);
}

void expect_matches_per_relay(const net::DiskGraph& g, sim::ThreadPool& pool,
                              const std::string& label) {
  const AllSkylines all = compute_all_skylines(g, pool);
  ASSERT_EQ(all.size(), g.size()) << label;

  std::size_t total = 0;
  std::size_t max_arcs = 0;
  for (net::NodeId u = 0; u < g.size(); ++u) {
    const std::string where = label + " relay " + std::to_string(u);
    const std::vector<net::NodeId> expected =
        skyline_forwarding_set(g, local_view(g, u));
    const std::span<const net::NodeId> got = all.forwarding_set(u);
    ASSERT_EQ(std::vector<net::NodeId>(got.begin(), got.end()), expected)
        << where;
    total += expected.size();

    // Arc counts must match a standalone skyline of the same local set.
    std::vector<geom::Disk> disks;
    disks.push_back(g.node(u).disk());
    for (const net::NodeId v : g.neighbors(u)) {
      disks.push_back(g.node(v).disk());
    }
    const core::Skyline sky = core::compute_skyline(disks, g.node(u).pos);
    EXPECT_EQ(all.arc_count(u), sky.arc_count()) << where;
    max_arcs = std::max(max_arcs, sky.arc_count());
  }
  EXPECT_EQ(all.total_forwarders(), total) << label;
  EXPECT_EQ(all.max_arc_count(), max_arcs) << label;
  if (g.size() > 0) {
    EXPECT_DOUBLE_EQ(all.average_forwarding_size(),
                     static_cast<double>(total) /
                         static_cast<double>(g.size()))
        << label;
  }
}

TEST(AllSkylinesTest, MatchesPerRelayReferenceHomogeneous) {
  sim::ThreadPool pool;
  expect_matches_per_relay(make_graph(false, 8, 0xA110C8), pool, "homo deg=8");
}

TEST(AllSkylinesTest, MatchesPerRelayReferenceHeterogeneous) {
  sim::ThreadPool pool;
  expect_matches_per_relay(make_graph(true, 8, 0xA110C9), pool,
                           "hetero deg=8");
}

TEST(AllSkylinesTest, ResultIndependentOfThreadCount) {
  const net::DiskGraph g = make_graph(true, 10, 0xA110CA);
  sim::ThreadPool one(1);
  const AllSkylines serial = compute_all_skylines(g, one);
  for (const std::size_t threads : {std::size_t{2}, std::size_t{5}}) {
    sim::ThreadPool pool(threads);
    const AllSkylines parallel = compute_all_skylines(g, pool);
    ASSERT_EQ(parallel.size(), serial.size());
    for (net::NodeId u = 0; u < g.size(); ++u) {
      const auto a = serial.forwarding_set(u);
      const auto b = parallel.forwarding_set(u);
      ASSERT_EQ(std::vector<net::NodeId>(b.begin(), b.end()),
                std::vector<net::NodeId>(a.begin(), a.end()))
          << "threads=" << threads << " relay=" << u;
      EXPECT_EQ(parallel.arc_count(u), serial.arc_count(u));
    }
  }
}

TEST(AllSkylinesTest, IsolatedNodesHaveEmptyForwardingSets) {
  // Three nodes far apart: no edges, every forwarding set empty, every
  // skyline a single self-disk arc.
  std::vector<net::Node> nodes;
  for (int i = 0; i < 3; ++i) {
    nodes.push_back({net::kNoNode, {static_cast<double>(100 * i), 0.0}, 1.0});
  }
  const net::DiskGraph g = net::DiskGraph::build(std::move(nodes));
  sim::ThreadPool pool;
  const AllSkylines all = compute_all_skylines(g, pool);
  ASSERT_EQ(all.size(), 3u);
  EXPECT_EQ(all.total_forwarders(), 0u);
  for (net::NodeId u = 0; u < 3; ++u) {
    EXPECT_TRUE(all.forwarding_set(u).empty());
    EXPECT_EQ(all.arc_count(u), 1u);
  }
}

TEST(AllSkylinesTest, EmptyGraph) {
  const net::DiskGraph g = net::DiskGraph::build({});
  sim::ThreadPool pool;
  const AllSkylines all = compute_all_skylines(g, pool);
  EXPECT_EQ(all.size(), 0u);
  EXPECT_EQ(all.total_forwarders(), 0u);
  EXPECT_EQ(all.max_arc_count(), 0u);
}

}  // namespace
}  // namespace mldcs::bcast
