// Approximation-quality property tests: the classical guarantees the
// heuristics are supposed to satisfy, checked against the exact optimum.

#include <gtest/gtest.h>

#include <cmath>

#include "broadcast/forwarding.hpp"
#include "broadcast/set_cover.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"
#include "sim/stats.hpp"

namespace mldcs::bcast {
namespace {

TEST(ApproximationTest, GreedySetCoverWithinHarmonicBound) {
  // Chvátal: |greedy| <= H(s_max) * |opt| with H(k) <= 1 + ln k, where
  // s_max is the largest set size.
  sim::Xoshiro256 rng(2025);
  for (int trial = 0; trial < 60; ++trial) {
    SetCoverInstance inst;
    inst.universe_size = 6 + rng.uniform_int(10);
    inst.sets.resize(4 + rng.uniform_int(8));
    std::size_t s_max = 1;
    for (auto& s : inst.sets) {
      for (std::uint32_t e = 0; e < inst.universe_size; ++e) {
        if (rng.uniform() < 0.3) s.push_back(e);
      }
      s_max = std::max(s_max, s.size());
    }
    const auto greedy = greedy_set_cover(inst);
    const auto opt = optimal_set_cover(inst);
    if (opt.empty()) continue;
    const double bound =
        (1.0 + std::log(static_cast<double>(s_max))) *
        static_cast<double>(opt.size());
    EXPECT_LE(static_cast<double>(greedy.size()), bound + 1e-9)
        << "trial " << trial;
  }
}

TEST(ApproximationTest, GreedyForwardingCloseToOptimalOnPaperWorkloads) {
  // Empirically (Figures 5.1/5.4) greedy tracks the optimum within a few
  // percent on the paper's deployments; lock that in as a regression bound
  // with generous slack (ratio <= 1.5 on average).
  for (const bool hetero : {false, true}) {
    sim::RunningStats ratio;
    for (std::uint64_t seed = 0; seed < 30; ++seed) {
      net::DeploymentParams p;
      p.model = hetero ? net::RadiusModel::kUniform
                       : net::RadiusModel::kHomogeneous;
      p.target_avg_degree = 10;
      sim::Xoshiro256 rng(sim::derive_seed(31337, seed));
      const auto g = net::generate_graph(p, rng);
      const LocalView view = local_view(g, 0);
      const auto opt = optimal_forwarding_set(g, view);
      if (opt.empty()) continue;
      const auto greedy = greedy_forwarding_set(g, view);
      ratio.add(static_cast<double>(greedy.size()) /
                static_cast<double>(opt.size()));
    }
    EXPECT_GE(ratio.mean(), 1.0);
    EXPECT_LE(ratio.mean(), 1.5) << "hetero=" << hetero;
  }
}

TEST(ApproximationTest, CalinescuWithinConstantFactorOfOptimal) {
  // The selecting-forwarding-set heuristic of [6] carries a constant
  // approximation ratio; on the paper's homogeneous workloads the measured
  // average ratio is small.  Bound it loosely (<= 2.0 mean, <= 4.0 worst).
  sim::RunningStats ratio;
  double worst = 0.0;
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    net::DeploymentParams p;
    p.target_avg_degree = 10;
    sim::Xoshiro256 rng(sim::derive_seed(41414, seed));
    const auto g = net::generate_graph(p, rng);
    const LocalView view = local_view(g, 0);
    const auto opt = optimal_forwarding_set(g, view);
    if (opt.empty()) continue;
    const auto sel = calinescu_forwarding_set(g, view);
    const double r = static_cast<double>(sel.size()) /
                     static_cast<double>(opt.size());
    ratio.add(r);
    worst = std::max(worst, r);
  }
  EXPECT_LE(ratio.mean(), 2.0);
  EXPECT_LE(worst, 4.0);
}

TEST(ApproximationTest, SkylineSizeIsDensityBounded) {
  // The skyline of n random disks grows sublinearly in n (far below the
  // 2n worst case); as a regression guard, at degree 20 the average
  // skyline forwarding set must stay below half the flooding set.
  sim::RunningStats flood, sky;
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    net::DeploymentParams p;
    p.target_avg_degree = 20;
    sim::Xoshiro256 rng(sim::derive_seed(52525, seed));
    const auto g = net::generate_graph(p, rng);
    const LocalView view = local_view(g, 0);
    flood.add(static_cast<double>(view.one_hop.size()));
    sky.add(static_cast<double>(skyline_forwarding_set(g, view).size()));
  }
  EXPECT_LT(sky.mean(), 0.6 * flood.mean());
}

}  // namespace
}  // namespace mldcs::bcast
