// Tests for the set-cover solvers: greedy approximation behaviour and
// exactness of the branch-and-bound against brute-force enumeration.

#include "broadcast/set_cover.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

TEST(SetCoverTest, EmptyUniverseNeedsNothing) {
  const SetCoverInstance inst{0, {{}, {}}};
  EXPECT_TRUE(greedy_set_cover(inst).empty());
  EXPECT_TRUE(optimal_set_cover(inst).empty());
  EXPECT_TRUE(bruteforce_set_cover(inst).empty());
  EXPECT_TRUE(covers_universe(inst, {}));
}

TEST(SetCoverTest, SingleSetCoversAll) {
  const SetCoverInstance inst{3, {{0, 1, 2}}};
  EXPECT_EQ(greedy_set_cover(inst), (std::vector<std::size_t>{0}));
  EXPECT_EQ(optimal_set_cover(inst), (std::vector<std::size_t>{0}));
}

TEST(SetCoverTest, GreedyCanBeSuboptimal) {
  // Classic trap: greedy picks the big set {0,1,2,3} then needs two more;
  // optimum is the two disjoint sets.
  const SetCoverInstance inst{6,
                              {{0, 1, 2, 3},     // greedy bait
                               {0, 1, 4},        // optimal half 1
                               {2, 3, 5}}};      // optimal half 2
  const auto greedy = greedy_set_cover(inst);
  const auto optimal = optimal_set_cover(inst);
  EXPECT_TRUE(covers_universe(inst, greedy));
  EXPECT_TRUE(covers_universe(inst, optimal));
  EXPECT_EQ(optimal.size(), 2u);
  EXPECT_EQ(greedy.size(), 3u);
}

TEST(SetCoverTest, ForcedCandidateIsAlwaysChosen) {
  // Element 3 is only covered by set 2.
  const SetCoverInstance inst{4, {{0, 1}, {1, 2}, {3}, {0, 2}}};
  const auto optimal = optimal_set_cover(inst);
  EXPECT_NE(std::find(optimal.begin(), optimal.end(), 2u), optimal.end());
  EXPECT_TRUE(covers_universe(inst, optimal));
}

TEST(SetCoverTest, UncoverableElementsAreIgnored) {
  // Element 2 is covered by nobody; a cover of {0, 1} suffices.
  const SetCoverInstance inst{3, {{0}, {1}}};
  const auto optimal = optimal_set_cover(inst);
  EXPECT_EQ(optimal.size(), 2u);
  EXPECT_TRUE(covers_universe(inst, optimal));
}

TEST(SetCoverTest, DuplicateSetsCollapse) {
  const SetCoverInstance inst{2, {{0, 1}, {0, 1}, {0, 1}}};
  EXPECT_EQ(optimal_set_cover(inst).size(), 1u);
}

TEST(SetCoverTest, EmptySetsNeverChosen) {
  const SetCoverInstance inst{2, {{}, {0, 1}, {}}};
  EXPECT_EQ(optimal_set_cover(inst), (std::vector<std::size_t>{1}));
  EXPECT_EQ(greedy_set_cover(inst), (std::vector<std::size_t>{1}));
}

TEST(SetCoverTest, CoversUniverseRejectsPartialCover) {
  const SetCoverInstance inst{3, {{0}, {1}, {2}}};
  EXPECT_FALSE(covers_universe(inst, {0, 1}));
  EXPECT_TRUE(covers_universe(inst, {0, 1, 2}));
  EXPECT_FALSE(covers_universe(inst, {99}));  // out of range
}

/// Exactness sweep: branch-and-bound == brute force on random instances.
class SetCoverExactnessTest : public ::testing::TestWithParam<int> {};

TEST_P(SetCoverExactnessTest, BranchAndBoundMatchesBruteForce) {
  sim::Xoshiro256 rng(static_cast<std::uint64_t>(GetParam()) * 131 + 11);
  for (int trial = 0; trial < 30; ++trial) {
    SetCoverInstance inst;
    inst.universe_size = 4 + rng.uniform_int(8);       // 4..11 elements
    const std::size_t n_sets = 3 + rng.uniform_int(9); // 3..11 sets
    inst.sets.resize(n_sets);
    for (auto& s : inst.sets) {
      for (std::uint32_t e = 0; e < inst.universe_size; ++e) {
        if (rng.uniform() < 0.35) s.push_back(e);
      }
    }
    const auto exact = optimal_set_cover(inst);
    const auto brute = bruteforce_set_cover(inst);
    EXPECT_TRUE(covers_universe(inst, exact));
    EXPECT_TRUE(covers_universe(inst, brute));
    EXPECT_EQ(exact.size(), brute.size())
        << "seed " << GetParam() << " trial " << trial;
    // Greedy is feasible and never better than optimal.
    const auto greedy = greedy_set_cover(inst);
    EXPECT_TRUE(covers_universe(inst, greedy));
    EXPECT_GE(greedy.size(), exact.size());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SetCoverExactnessTest, ::testing::Range(0, 8));

TEST(SetCoverTest, LargerInstanceStillExactAndFast) {
  // 30 candidates, 60 elements: far beyond brute force, trivial for B&B.
  sim::Xoshiro256 rng(777);
  SetCoverInstance inst;
  inst.universe_size = 60;
  inst.sets.resize(30);
  for (auto& s : inst.sets) {
    for (std::uint32_t e = 0; e < inst.universe_size; ++e) {
      if (rng.uniform() < 0.15) s.push_back(e);
    }
  }
  const auto exact = optimal_set_cover(inst);
  const auto greedy = greedy_set_cover(inst);
  EXPECT_TRUE(covers_universe(inst, exact));
  EXPECT_LE(exact.size(), greedy.size());
}

}  // namespace
}  // namespace mldcs::bcast
