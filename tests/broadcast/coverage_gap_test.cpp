// Tests for the Figure 5.6 phenomenon: construction, detection, broadcast
// failure under the skyline scheme, and the patched-scheme repair.

#include "broadcast/coverage_gap.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "broadcast/broadcast_sim.hpp"
#include "net/topology.hpp"
#include "sim/rng.hpp"

namespace mldcs::bcast {
namespace {

TEST(Figure56Test, TopologyMatchesThePaper) {
  const auto g = figure56_topology();
  ASSERT_EQ(g.size(), 6u);
  // u's 1-hop neighbors are u1, u2, u3.
  const auto nb = g.neighbors(0);
  EXPECT_EQ(std::vector<net::NodeId>(nb.begin(), nb.end()),
            (std::vector<net::NodeId>{1, 2, 3}));
  // u4, u5 are strict 2-hop neighbors of u.
  EXPECT_EQ(g.two_hop_neighbors(0), (std::vector<net::NodeId>{4, 5}));
  // u3 covers u4/u5 physically but is not linked to them.
  EXPECT_TRUE(g.node(3).covers(g.node(4)));
  EXPECT_TRUE(g.node(3).covers(g.node(5)));
  EXPECT_FALSE(g.linked(3, 4));
  EXPECT_FALSE(g.linked(3, 5));
}

TEST(Figure56Test, SkylineSetIsU3Only) {
  const auto g = figure56_topology();
  const LocalView view = local_view(g, 0);
  EXPECT_EQ(skyline_forwarding_set(g, view), (std::vector<net::NodeId>{3}));
}

TEST(Figure56Test, OptimalSetIsU1U2) {
  const auto g = figure56_topology();
  const LocalView view = local_view(g, 0);
  EXPECT_EQ(optimal_forwarding_set(g, view),
            (std::vector<net::NodeId>{1, 2}));
}

TEST(Figure56Test, GapDetectorFindsU4U5) {
  const auto g = figure56_topology();
  const auto gap = skyline_coverage_gap(g, 0);
  EXPECT_TRUE(gap.exists());
  EXPECT_EQ(gap.forwarding_set, (std::vector<net::NodeId>{3}));
  EXPECT_EQ(gap.uncovered, (std::vector<net::NodeId>{4, 5}));
}

TEST(Figure56Test, SkylineBroadcastFailsToDeliver) {
  const auto g = figure56_topology();
  const auto sky = simulate_broadcast(g, 0, Scheme::kSkyline);
  EXPECT_FALSE(sky.full_delivery());
  EXPECT_EQ(sky.delivered, 4u);  // u, u1, u2, u3 — never u4/u5
  const auto greedy = simulate_broadcast(g, 0, Scheme::kGreedy);
  EXPECT_TRUE(greedy.full_delivery());
}

TEST(Figure56Test, PhysicalReceptionMasksTheGap) {
  // Under physical coverage u3's transmission does reach u4/u5 — the gap is
  // an artifact of the bidirectional-link model, as the paper notes.
  const auto g = figure56_topology();
  const auto phys = simulate_broadcast(g, 0, Scheme::kSkyline,
                                       ReceptionModel::kPhysicalCoverage);
  EXPECT_GE(phys.delivered, 6u);
}

TEST(Figure56Test, PatchedSchemeClosesTheGap) {
  const auto g = figure56_topology();
  const LocalView view = local_view(g, 0);
  const auto patched = patched_skyline_forwarding_set(g, view);
  // Patched set must dominate the 2-hop neighborhood.
  for (net::NodeId w : view.two_hop) {
    bool covered = false;
    for (net::NodeId v : patched) covered = covered || g.linked(v, w);
    EXPECT_TRUE(covered) << "2-hop node " << w;
  }
  // And it keeps the skyline members.
  EXPECT_TRUE(std::binary_search(patched.begin(), patched.end(), 3u));
}

TEST(CoverageGapTest, NoGapInHomogeneousNetworks) {
  // Homogeneous: coverage == linkage, so the skyline set always dominates
  // the 2-hop neighborhood (Sun et al.'s guarantee).
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    net::DeploymentParams p;
    p.target_avg_degree = 10;
    sim::Xoshiro256 rng(seed);
    const auto g = net::generate_graph(p, rng);
    const auto gap = skyline_coverage_gap(g, 0);
    EXPECT_FALSE(gap.exists()) << "seed " << seed;
  }
}

TEST(CoverageGapTest, PatchedEqualsSkylineWhenNoGap) {
  net::DeploymentParams p;
  p.target_avg_degree = 10;
  sim::Xoshiro256 rng(300);
  const auto g = net::generate_graph(p, rng);
  const LocalView view = local_view(g, 0);
  const auto gap = skyline_coverage_gap(g, 0);
  ASSERT_FALSE(gap.exists());
  EXPECT_EQ(patched_skyline_forwarding_set(g, view),
            skyline_forwarding_set(g, view));
}

TEST(CoverageGapTest, GapsOccurInHeterogeneousNetworks) {
  // The paper's point: with radii in U[1,2] the gap does occur in practice.
  net::DeploymentParams p;
  p.model = net::RadiusModel::kUniform;
  p.target_avg_degree = 10;
  int gaps = 0;
  for (std::uint64_t seed = 0; seed < 200; ++seed) {
    sim::Xoshiro256 rng(sim::derive_seed(9000, seed));
    const auto g = net::generate_graph(p, rng);
    if (skyline_coverage_gap(g, 0).exists()) ++gaps;
  }
  EXPECT_GT(gaps, 0) << "expected at least one natural Figure 5.6 case in "
                        "200 heterogeneous deployments";
}

}  // namespace
}  // namespace mldcs::bcast
