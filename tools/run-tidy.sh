#!/usr/bin/env bash
# Run clang-tidy over src/, tests/, bench/ and examples/ using the
# project's compile database (test and bench sources carry the same bug
# classes as the engine — uninitialized locals, pessimizing copies — and
# the gtest/benchmark macros expand from system headers, so they do not
# drown the output in third-party noise).
#
# Usage: tools/run-tidy.sh [build-dir] [extra clang-tidy args...]
#   build-dir defaults to "build"; it is configured on the fly (with
#   CMAKE_EXPORT_COMPILE_COMMANDS=ON) when no compile database is found.
#
# Environment:
#   CLANG_TIDY  override the clang-tidy binary (e.g. clang-tidy-18)
#   TIDY_JOBS   parallel jobs (default: nproc)
#
# Exit status: 0 when clang-tidy reports no findings (WarningsAsErrors: '*'
# in .clang-tidy promotes every finding to an error), or when clang-tidy is
# not installed (the check is skipped with a notice so that sanitizer-only
# environments can still run the full local gate); non-zero otherwise.

set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-${repo_root}/build}"
shift || true

find_tidy() {
  if [[ -n "${CLANG_TIDY:-}" ]]; then
    command -v "${CLANG_TIDY}" && return 0
  fi
  local candidate
  for candidate in clang-tidy clang-tidy-19 clang-tidy-18 clang-tidy-17 \
                   clang-tidy-16 clang-tidy-15; do
    if command -v "${candidate}" > /dev/null 2>&1; then
      command -v "${candidate}"
      return 0
    fi
  done
  return 1
}

if ! tidy="$(find_tidy)"; then
  echo "run-tidy: SKIP — clang-tidy not found on PATH (set CLANG_TIDY to" \
       "point at a binary). The CI 'tidy' job runs this check." >&2
  exit 0
fi

if [[ ! -f "${build_dir}/compile_commands.json" ]]; then
  echo "run-tidy: no compile database in ${build_dir}; configuring..." >&2
  cmake -B "${build_dir}" -S "${repo_root}" \
        -DCMAKE_EXPORT_COMPILE_COMMANDS=ON > /dev/null
fi

# Everything the compile database covers; tools/analyze/fixtures/ is the
# analyzer's seeded-violation corpus and is deliberately never compiled.
mapfile -t sources < <(find "${repo_root}/src" "${repo_root}/tests" \
                            "${repo_root}/bench" "${repo_root}/examples" \
                            -name '*.cpp' | sort)
echo "run-tidy: ${tidy} over ${#sources[@]} files in" \
     "src/ tests/ bench/ examples/ (db: ${build_dir})"

jobs="${TIDY_JOBS:-$(nproc)}"
printf '%s\n' "${sources[@]}" \
  | xargs -P "${jobs}" -n 1 "${tidy}" -p "${build_dir}" --quiet "$@"

echo "run-tidy: OK — no findings"
