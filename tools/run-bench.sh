#!/usr/bin/env bash
# Build the Release perf suite and refresh BENCH_skyline.json at the repo
# root.  Usage:
#
#   tools/run-bench.sh [--quick] [--threads N] [--out PATH]
#
# --quick cuts the per-measurement time budget ~10x (the CI bench-smoke
# job uses it); full runs are what get checked in.  Without --out, results
# go to BENCH_skyline.json at the repo root.  See docs/PERFORMANCE.md for
# the JSON schema.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

cmake --preset release
cmake --build --preset release --target perf_suite -j "$(nproc)"

# Default the output path only when the caller did not pass --out.
out_args=(--out "${repo_root}/BENCH_skyline.json")
for arg in "$@"; do
  if [[ "${arg}" == "--out" ]]; then
    out_args=()
    break
  fi
done

./build/release/bench/perf_suite "$@" "${out_args[@]}"
echo "bench results: done"
