#!/usr/bin/env bash
# Build the Release perf suite and refresh BENCH_skyline.json at the repo
# root.  Usage:
#
#   tools/run-bench.sh [--quick]
#
# --quick cuts the per-measurement time budget ~10x (the CI bench-smoke
# job uses it); full runs are what get checked in.  See docs/PERFORMANCE.md
# for the JSON schema.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
cd "${repo_root}"

cmake --preset release
cmake --build --preset release --target perf_suite -j "$(nproc)"

./build/release/bench/perf_suite "$@" --out "${repo_root}/BENCH_skyline.json"
echo "bench results: ${repo_root}/BENCH_skyline.json"
