#!/usr/bin/env python3
"""Join one run's observability outputs into a single markdown report.

Usage:
  tools/mldcs_report.py --check EVENTS.jsonl
  tools/mldcs_report.py [--telemetry SNAP.json] [--events EVENTS.jsonl]
                        [--bench BENCH.json] [--out REPORT.md] [--title T]

--check validates an mldcs-events-v1 JSONL file (header schema, known
event types, strictly increasing ids, parents preceding children, count
matching the line count) and exits 0/2 — the CI gate for the flight
recorder's on-disk format.

Report mode joins whichever inputs are given — an mldcs-telemetry-v1
snapshot, an event log, an mldcs-perf-v1 benchmark document — into one
markdown file (stdout when --out is omitted): per-broadcast outcomes
refolded from the events, the watchdog verdict cross-checked between
metrics and events, headline telemetry counters, and the benchmark
summary.  Inputs that fail validation become named warnings in the
report rather than a crash; a run that died should still get a report.

Exit status: 0 on success (report mode, possibly with warnings embedded),
2 on --check failure, unreadable --out, or no inputs at all.
"""

import argparse
import sys

import obslib


def fold_broadcasts(events):
    """Mirror obs::replay_broadcasts: fold event segments into outcome
    rows.  Kept deliberately in sync with the C++ replay (differential-
    tested there); this copy only feeds the human-facing report."""
    out = []
    cur = None
    for e in events:
        t = e["t"]
        if t == "broadcast":
            cur = {"source": e["a"], "reachable": e["v"],
                   "transmissions": 0, "delivered": 1, "max_hops": 0,
                   "redundant": 0, "suppressed": 0}
            out.append(cur)
            continue
        if cur is None or t not in ("tx", "rx", "dup_rx", "suppress"):
            continue
        if t == "tx":
            cur["transmissions"] += 1
        elif t == "rx":
            cur["delivered"] += 1
            cur["max_hops"] = max(cur["max_hops"], e["v"])
        elif t == "dup_rx":
            cur["redundant"] += 1
        elif t == "suppress":
            cur["suppressed"] += 1
    return out


def watchdog_from_events(events):
    checks = [e for e in events if e["t"] == "watchdog_check"]
    bad = [e for e in events if e["t"] == "watchdog_mismatch"]
    return checks, bad


def section_events(lines, path):
    lines.append("## Flight recorder")
    lines.append("")
    try:
        header, events = obslib.load_events(path)
    except obslib.SchemaError as e:
        lines.append(f"> **WARNING:** {e}")
        lines.append("")
        return
    by_type = {}
    for e in events:
        by_type[e["t"]] = by_type.get(e["t"], 0) + 1
    lines.append(f"`{path}`: {len(events)} events"
                 f" ({header['dropped']} dropped"
                 f"{', recorder disarmed' if not header['enabled'] else ''})")
    lines.append("")
    if by_type:
        lines.append("| event | count |")
        lines.append("|---|---|")
        for t, n in sorted(by_type.items(), key=lambda kv: -kv[1]):
            lines.append(f"| `{t}` | {n} |")
        lines.append("")

    broadcasts = fold_broadcasts(events)
    if broadcasts:
        lines.append("### Broadcasts (refolded from events)")
        lines.append("")
        lines.append("| source | delivered | reachable | tx | dup rx "
                     "| suppressed | max hops |")
        lines.append("|---|---|---|---|---|---|---|")
        for b in broadcasts:
            lines.append(f"| {b['source']} | {b['delivered']} "
                         f"| {b['reachable']} | {b['transmissions']} "
                         f"| {b['redundant']} | {b['suppressed']} "
                         f"| {b['max_hops']} |")
        lines.append("")

    checks, bad = watchdog_from_events(events)
    if checks:
        sampled = sum(e["a"] for e in checks)
        lines.append(f"### Watchdog: {len(checks)} checks, "
                     f"{sampled} relays audited, {len(bad)} mismatches")
        lines.append("")
        if bad:
            relays = sorted({e["a"] for e in bad})
            lines.append(f"> **ALARM:** cache inconsistency on relay(s) "
                         f"{relays} — see `watchdog_mismatch` events.")
        else:
            lines.append("All sampled forwarding sets matched their "
                         "from-scratch recomputation.")
        lines.append("")


def section_telemetry(lines, path):
    lines.append("## Telemetry snapshot")
    lines.append("")
    try:
        doc = obslib.check_snapshot(obslib.load_json(path), path)
    except obslib.SchemaError as e:
        lines.append(f"> **WARNING:** {e}")
        lines.append("")
        return
    counters = doc["counters"]
    gauges = doc["gauges"]
    if not doc.get("enabled", True):
        lines.append("> Telemetry was compiled out; all values are zero.")
        lines.append("")
    rows = [(k, v) for k, v in sorted(counters.items())]
    rows += [(k, v) for k, v in sorted(gauges.items())]
    if rows:
        lines.append("| metric | value |")
        lines.append("|---|---|")
        for k, v in rows:
            lines.append(f"| `{k}` | {v} |")
        lines.append("")
    for name, h in sorted(doc["histograms"].items()):
        lines.append(f"- `{name}`: count={h['count']} mean={h['mean']:.1f} "
                     f"min={h['min']} max={h['max']}")
    if doc["histograms"]:
        lines.append("")

    # The watchdog verdict deserves its own line: a nonzero mismatch
    # counter is the alarm this report exists to surface.
    bad = counters.get("watchdog.mismatches")
    if bad is not None and counters.get("watchdog.checks", 0) > 0:
        if bad > 0:
            lines.append(f"> **ALARM:** `watchdog.mismatches` = {bad} "
                         f"(last at step "
                         f"{gauges.get('watchdog.last_mismatch_step')}).")
        else:
            lines.append(f"Watchdog clean: {counters['watchdog.checks']} "
                         "checks, 0 mismatches.")
        lines.append("")


def section_bench(lines, path):
    lines.append("## Benchmarks")
    lines.append("")
    try:
        doc = obslib.check_bench(obslib.load_json(path), path)
    except obslib.SchemaError as e:
        lines.append(f"> **WARNING:** {e}")
        lines.append("")
        return
    summary = obslib.bench_summary(doc)
    lines.append(f"`{path}` (mode={summary.get('mode')}, "
                 f"threads={summary.get('threads')})")
    lines.append("")
    lines.append("| headline | value |")
    lines.append("|---|---|")
    for key, val in summary.items():
        if key in ("mode", "threads"):
            continue
        if isinstance(val, dict):
            val = ", ".join(f"{k}: {v:.3g}" if isinstance(v, float)
                            else f"{k}: {v}" for k, v in val.items())
        elif isinstance(val, float):
            val = f"{val:.4g}"
        lines.append(f"| {key} | {val} |")
    lines.append("")


def main():
    parser = argparse.ArgumentParser(
        description="Validate an event log or join run outputs into a "
                    "markdown report.")
    parser.add_argument("--check", metavar="EVENTS.jsonl",
                        help="validate an mldcs-events-v1 file and exit")
    parser.add_argument("--events", help="mldcs-events-v1 JSONL")
    parser.add_argument("--telemetry", help="mldcs-telemetry-v1 snapshot")
    parser.add_argument("--bench", help="mldcs-perf-v1 document")
    parser.add_argument("--out", help="write the report here (else stdout)")
    parser.add_argument("--title", default="mldcs run report")
    args = parser.parse_args()

    if args.check:
        try:
            header, events = obslib.load_events(args.check)
        except obslib.SchemaError as e:
            print(f"mldcs_report: {e}", file=sys.stderr)
            return 2
        print(f"mldcs_report: OK: {args.check}: {len(events)} events, "
              f"{header['dropped']} dropped, schema {obslib.EVENT_SCHEMA}")
        return 0

    if not (args.events or args.telemetry or args.bench):
        parser.error("nothing to report: give --events, --telemetry, "
                     "--bench, or --check")

    lines = [f"# {args.title}", ""]
    if args.events:
        section_events(lines, args.events)
    if args.telemetry:
        section_telemetry(lines, args.telemetry)
    if args.bench:
        section_bench(lines, args.bench)
    report = "\n".join(lines).rstrip() + "\n"

    if args.out:
        try:
            with open(args.out, "w", encoding="utf-8") as f:
                f.write(report)
        except OSError as e:
            print(f"mldcs_report: cannot write {args.out}: {e}",
                  file=sys.stderr)
            return 2
        print(f"mldcs_report: wrote {args.out}")
    else:
        print(report, end="")
    return 0


if __name__ == "__main__":
    sys.exit(main())
