#!/usr/bin/env python3
"""Live per-shard load dashboard for a running mldcs binary.

Usage: tools/mldcs_top.py [HOST:]PORT [--interval SECONDS] [--once]
                          [--profile SECONDS]

Polls the introspection server a binary started with `--introspect PORT`
(mobility_maintenance, perf_suite — docs/OBSERVABILITY.md, "Live
introspection") and redraws a per-shard table:

  * /shards (mldcs-shards-v1): owned/halo/incoming/dirty residents and
    step/barrier-wait nanoseconds per shard, plus the engine step the
    table was published at,
  * /snapshot.json (mldcs-telemetry-v1): a headline strip of counters
    (cache.updates, shard.migrations, skyline.calls, ...) with
    per-interval rates once two snapshots are in hand, plus the
    pool.queue_depth gauge (and its high-water mark),
  * /profile?seconds=N&format=json (mldcs-profile-v1, only with
    --profile N): a sampled phase-breakdown strip — where the CPU went,
    by PhaseScope tag, over an N-second window.  The profile request
    blocks the (single-threaded) server for the window, so the redraw
    cadence drops to roughly the window length while enabled.

Both documents are validated through obslib before display, so this
doubles as a liveness + schema probe: `--once` fetches each endpoint a
single time, prints one table, and exits — the mode CI's bench-smoke
step uses to assert that a live run serves well-formed introspection.

The server is single-threaded and never blocks the simulation; polling
at sub-second intervals is safe but pointless below the heartbeat/step
cadence.  With telemetry compiled out the endpoints still answer (empty
documents); the dashboard then shows an empty table rather than failing.

Exit status: 0 on success; 2 when the server is unreachable or a
response fails schema validation.
"""

import argparse
import json
import sys
import time
import urllib.error
import urllib.request

import obslib

#: Counters worth a slot on the headline strip, in display order.
HEADLINE_COUNTERS = (
    "shard.steps", "shard.migrations", "shard.exchanged",
    "cache.updates", "cache.dirty_relays", "skyline.calls",
)

#: Gauges worth a slot on the headline strip, in display order.
HEADLINE_GAUGES = (
    "pool.queue_depth", "pool.queue_depth_hwm",
)


def rate_text(delta, dt):
    """Compact per-second rate: '+12/s', '+3.4k/s'."""
    rate = delta / dt if dt > 0 else 0.0
    if rate >= 10_000:
        return f"+{rate / 1000.0:.1f}k/s"
    if rate >= 10:
        return f"+{rate:.0f}/s"
    return f"+{rate:.1f}/s"


def fail(msg):
    print(f"mldcs_top: {msg}", file=sys.stderr)
    sys.exit(2)


def fetch_json(base, endpoint, timeout):
    url = base + endpoint
    try:
        with urllib.request.urlopen(url, timeout=timeout) as resp:
            body = resp.read().decode("utf-8")
    except (urllib.error.URLError, OSError, TimeoutError) as e:
        fail(f"cannot fetch {url}: {e}")
    try:
        return json.loads(body)
    except ValueError as e:
        fail(f"{url}: response is not JSON: {e}")


def render(base, timeout, prev=None, profile_seconds=None):
    """One dashboard frame.  Returns (lines, state); pass the state back
    as `prev` on the next call to get per-interval counter rates."""
    shards_doc = fetch_json(base, "/shards", timeout)
    snap_doc = fetch_json(base, "/snapshot.json", timeout)
    try:
        shards = obslib.check_shards(shards_doc, base + "/shards")
        obslib.check_snapshot(snap_doc, base + "/snapshot.json")
    except obslib.SchemaError as e:
        fail(str(e))

    lines = []
    step = shards_doc.get("step", 0)
    lines.append(f"mldcs_top: {base}  step {step}  "
                 f"{len(shards)} shard(s)")

    counters = snap_doc.get("counters", {})
    gauges = snap_doc.get("gauges", {})
    now = time.monotonic()
    prev_time, prev_counters = prev if prev is not None else (None, {})
    dt = now - prev_time if prev_time is not None else 0.0
    strip = []
    for name in HEADLINE_COUNTERS:
        if name not in counters:
            continue
        cell = f"{name}={counters[name]}"
        if name in prev_counters and dt > 0:
            cell += f"({rate_text(counters[name] - prev_counters[name], dt)})"
        strip.append(cell)
    for name in HEADLINE_GAUGES:
        if name in gauges:
            strip.append(f"{name}={gauges[name]}")
    if strip:
        lines.append("  " + "  ".join(strip))
    state = (now, dict(counters))

    if profile_seconds is not None:
        # Blocks for the window: the introspection server sleeps while
        # the profiler's CPU-clock timers sample the worker threads.
        prof_doc = fetch_json(
            base, f"/profile?seconds={profile_seconds}&format=json",
            timeout + profile_seconds)
        try:
            obslib.check_profile_doc(prof_doc, base + "/profile")
        except obslib.SchemaError as e:
            fail(str(e))
        total = prof_doc["total_samples"]
        if total == 0:
            lines.append(f"  phases({profile_seconds}s): no samples "
                         "(idle window or telemetry compiled out)")
        else:
            cells = [f"{name} {100.0 * count / total:.0f}%"
                     for name, count in sorted(prof_doc["phases"].items(),
                                               key=lambda kv: -kv[1])]
            lines.append(f"  phases({profile_seconds}s, {total} samples): "
                         + " | ".join(cells))

    if not shards:
        lines.append("  (no shard table: single-engine run, telemetry "
                     "compiled out, or the engine is not up yet)")
        return lines, state

    header = (f"  {'shard':>5} {'owned':>7} {'halo':>7} {'incoming':>8} "
              f"{'dirty':>7} {'step_us':>9} {'wait_us':>9} {'wait%':>6}")
    lines.append(header)
    lines.append("  " + "-" * (len(header) - 2))
    for s in shards:
        busy = s["step_ns"] + s["barrier_wait_ns"]
        share = 100.0 * s["barrier_wait_ns"] / busy if busy > 0 else 0.0
        lines.append(f"  {s['shard']:>5} {s['owned']:>7} {s['halo']:>7} "
                     f"{s['incoming']:>8} {s['dirty']:>7} "
                     f"{s['step_ns'] / 1e3:>9.1f} "
                     f"{s['barrier_wait_ns'] / 1e3:>9.1f} "
                     f"{share:>5.1f}%")
    return lines, state


def main():
    parser = argparse.ArgumentParser(
        description="Live per-shard dashboard over the mldcs "
                    "introspection server.")
    parser.add_argument("target",
                        help="introspection server as [HOST:]PORT "
                             "(default host 127.0.0.1)")
    parser.add_argument("--interval", type=float, default=1.0,
                        help="refresh period in seconds (default 1.0)")
    parser.add_argument("--once", action="store_true",
                        help="fetch and print a single table, then exit "
                             "(the CI probe mode)")
    parser.add_argument("--timeout", type=float, default=5.0,
                        help="per-request timeout in seconds (default 5)")
    parser.add_argument("--profile", type=int, metavar="SECONDS",
                        help="also sample an N-second /profile window per "
                             "redraw and show the phase breakdown (blocks "
                             "the server for the window; 1..30)")
    args = parser.parse_args()
    if args.profile is not None and not 1 <= args.profile <= 30:
        fail("--profile expects a window of 1..30 seconds")

    host, sep, port = args.target.rpartition(":")
    if not sep:
        host = "127.0.0.1"
    if not port.isdigit():
        fail(f"target {args.target!r} is not [HOST:]PORT")
    base = f"http://{host}:{port}"

    if args.once:
        lines, _ = render(base, args.timeout,
                          profile_seconds=args.profile)
        print("\n".join(lines))
        return 0

    try:
        prev = None
        while True:
            lines, prev = render(base, args.timeout, prev=prev,
                                 profile_seconds=args.profile)
            # Home + clear-to-end keeps the table in place without
            # erasing scrollback the way a full clear would.
            sys.stdout.write("\x1b[H\x1b[J" + "\n".join(lines) + "\n")
            sys.stdout.flush()
            time.sleep(max(args.interval, 0.05))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    sys.exit(main())
