#!/usr/bin/env python3
"""mldcs-analyze: project-specific static analysis for the mldcs tree.

Enforces the discipline the generic linters cannot see (tools/run-tidy.sh
covers the generic part):

  hot-no-alloc            MLDCS_HOT_PATH call trees never allocate
  lock-discipline         MLDCS_NO_LOCK call trees never lock/block
  tolerance-audit         geometry/core compare doubles through geom::kTol
  telemetry-stub-parity   ON/OFF telemetry branches expose the same surface
  event-vocabulary        EventType enum / switch / obslib / emit sites agree

Usage:
    tools/analyze/mldcs_analyze.py [--root DIR] [--compile-commands FILE]
        [--rules r1,r2] [--baseline FILE] [--json-out FILE]
        [--frontend auto|tokens|clang] [--strict-relational] [paths...]

Exit status: 0 clean, 1 findings, 2 usage/internal error.

Annotations come from src/core/annotations.hpp; suppress single findings
with `// mldcs-analyze:allow(<rule>): <reason>` on (or just above) the
flagged line, or whole findings with an entry in the baseline file
(tools/analyze/baseline.json — every entry needs a "reason").
See docs/CORRECTNESS.md ("Static analysis").
"""

from __future__ import annotations

import argparse
import json
import os
import sys

sys.path.insert(0, os.path.dirname(os.path.abspath(__file__)))

import rules as rules_mod  # noqa: E402
from model import Model    # noqa: E402
from rules import Ctx, RULE_FUNCS, RULES  # noqa: E402

CXX_EXT = (".cpp", ".cc", ".cxx", ".hpp", ".hh", ".hxx", ".h", ".ipp")


def find_sources(root: str, compile_commands: str | None,
                 explicit: list) -> list:
    """Files to analyze: explicit paths if given, else src/** — seeded from
    compile_commands.json when available (so the set tracks the build),
    always unioned with a directory scan (headers are not TUs)."""
    files: set = set()
    if explicit:
        for p in explicit:
            ap = os.path.abspath(p)
            if os.path.isdir(ap):
                for dirpath, _dirs, names in os.walk(ap):
                    for n in names:
                        if n.endswith(CXX_EXT):
                            files.add(os.path.join(dirpath, n))
            elif os.path.isfile(ap):
                files.add(ap)
            else:
                raise FileNotFoundError(p)
        return sorted(files)
    src = os.path.join(root, "src")
    if compile_commands and os.path.isfile(compile_commands):
        try:
            with open(compile_commands, encoding="utf-8") as f:
                for entry in json.load(f):
                    fp = os.path.normpath(
                        os.path.join(entry.get("directory", ""),
                                     entry.get("file", "")))
                    if fp.startswith(src + os.sep) and os.path.isfile(fp):
                        files.add(fp)
        except (json.JSONDecodeError, OSError) as e:
            print(f"mldcs-analyze: warning: unreadable compile commands "
                  f"({e}); falling back to a directory scan",
                  file=sys.stderr)
    for dirpath, _dirs, names in os.walk(src):
        for n in names:
            if n.endswith(CXX_EXT):
                files.add(os.path.join(dirpath, n))
    return sorted(files)


def load_baseline(path: str):
    """Baseline entries: [{"key": ..., "reason": ...}, ...]."""
    with open(path, encoding="utf-8") as f:
        data = json.load(f)
    if not isinstance(data, list):
        raise ValueError("baseline must be a JSON list")
    entries = {}
    for i, e in enumerate(data):
        if not isinstance(e, dict) or "key" not in e:
            raise ValueError(f"baseline entry {i} has no 'key'")
        if not str(e.get("reason", "")).strip():
            raise ValueError(
                f"baseline entry {i} ({e['key']!r}) has no 'reason' — "
                f"every suppression must be justified")
        entries[e["key"]] = e
    return entries


def main(argv=None) -> int:
    ap = argparse.ArgumentParser(
        prog="mldcs-analyze",
        description="Project-specific static analysis for the mldcs tree.")
    default_root = os.path.dirname(os.path.dirname(
        os.path.dirname(os.path.abspath(__file__))))
    ap.add_argument("paths", nargs="*",
                    help="files/directories to analyze (default: <root>/src)")
    ap.add_argument("--root", default=default_root,
                    help="repository root (default: two levels above this "
                         "script)")
    ap.add_argument("--compile-commands", default=None,
                    help="compile_commands.json to seed the file set "
                         "(default: first build*/compile_commands.json "
                         "under the root)")
    ap.add_argument("--rules", default=",".join(RULES),
                    help="comma-separated rule subset (default: all). "
                         "Known: " + ", ".join(RULES))
    ap.add_argument("--baseline", default=None,
                    help="baseline JSON of accepted findings (default: "
                         "<root>/tools/analyze/baseline.json if present)")
    ap.add_argument("--json-out", default=None,
                    help="also write findings as a JSON report")
    ap.add_argument("--frontend", choices=("auto", "tokens", "clang"),
                    default="auto",
                    help="source frontend: the built-in token model "
                         "(default), or libclang where python3-clang is "
                         "installed")
    ap.add_argument("--strict-relational", action="store_true",
                    help="tolerance-audit also flags </<=/>/>= (heuristic)")
    ap.add_argument("--list-rules", action="store_true",
                    help="print the rule names and exit")
    ap.add_argument("-q", "--quiet", action="store_true",
                    help="suppress the per-finding lines (summary only)")
    args = ap.parse_args(argv)

    if args.list_rules:
        for r in RULES:
            print(r)
        return 0

    root = os.path.abspath(args.root)
    selected = [r.strip() for r in args.rules.split(",") if r.strip()]
    unknown = [r for r in selected if r not in RULE_FUNCS]
    if unknown:
        print(f"mldcs-analyze: unknown rule(s): {', '.join(unknown)}",
              file=sys.stderr)
        return 2

    cc = args.compile_commands
    if cc is None:
        for d in sorted(os.listdir(root)) if os.path.isdir(root) else []:
            cand = os.path.join(root, d, "compile_commands.json")
            if d.startswith("build") and os.path.isfile(cand):
                cc = cand
                break

    try:
        files = find_sources(root, cc, args.paths)
    except FileNotFoundError as e:
        print(f"mldcs-analyze: no such path: {e}", file=sys.stderr)
        return 2
    if not files:
        print("mldcs-analyze: no sources found", file=sys.stderr)
        return 2

    model = Model()
    for fp in files:
        try:
            with open(fp, encoding="utf-8", errors="replace") as f:
                model.add_file(fp, f.read())
        except OSError as e:
            print(f"mldcs-analyze: warning: skipping {fp}: {e}",
                  file=sys.stderr)
    model.finish()

    if args.frontend == "clang":
        try:
            import clangfe
            clangfe.refine(model, cc)
        except clangfe.ClangUnavailable as e:
            print(f"mldcs-analyze: --frontend=clang unavailable: {e}\n"
                  f"  (install python3-clang + libclang, or use the "
                  f"default token frontend)", file=sys.stderr)
            return 2
    elif args.frontend == "auto":
        try:
            import clangfe
            clangfe.refine(model, cc)
        except Exception:
            pass  # token model stands alone

    ctx = Ctx(root, strict_relational=args.strict_relational)
    findings = []
    for r in selected:
        findings.extend(RULE_FUNCS[r](model, ctx))
    findings.sort(key=lambda f: (f.file, f.line, f.rule, f.key))

    baseline_path = args.baseline
    if baseline_path is None:
        cand = os.path.join(root, "tools", "analyze", "baseline.json")
        baseline_path = cand if os.path.isfile(cand) else None
    baseline = {}
    if baseline_path:
        try:
            baseline = load_baseline(baseline_path)
        except (OSError, ValueError, json.JSONDecodeError) as e:
            print(f"mldcs-analyze: bad baseline {baseline_path}: {e}",
                  file=sys.stderr)
            return 2

    active, suppressed = [], []
    for f in findings:
        (suppressed if f.key in baseline else active).append(f)
    stale = sorted(set(baseline) - {f.key for f in suppressed})

    if not args.quiet:
        for f in active:
            print(f.text())
    for k in stale:
        print(f"mldcs-analyze: warning: stale baseline entry (no longer "
              f"fires): {k}", file=sys.stderr)

    if args.json_out:
        report = {
            "schema": "mldcs-analyze-v1",
            "root": root,
            "rules": selected,
            "files": len(files),
            "findings": [f.as_json() for f in active],
            "suppressed": [dict(f.as_json(),
                                reason=baseline[f.key].get("reason", ""))
                           for f in suppressed],
            "stale_baseline": stale,
        }
        with open(args.json_out, "w", encoding="utf-8") as f:
            json.dump(report, f, indent=2)
            f.write("\n")

    print(f"mldcs-analyze: {len(files)} files, {len(selected)} rules: "
          f"{len(active)} finding(s), {len(suppressed)} baselined"
          + (f", {len(stale)} stale baseline entr"
             f"{'y' if len(stale) == 1 else 'ies'}" if stale else ""))
    return 1 if active else 0


if __name__ == "__main__":
    sys.exit(main())
