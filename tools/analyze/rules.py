"""The five mldcs-analyze rules.

Each rule is a function `(model, ctx) -> list[Finding]`.  `ctx` carries the
repo root, per-rule options, and helpers.  Rules must honor inline
suppression (`// mldcs-analyze:allow(<rule>)` on the flagged line or the
line above) themselves via `model.allowed`; baseline suppression is applied
by the driver on the stable `key`.

Rule summaries (full motivation in docs/CORRECTNESS.md):

  hot-no-alloc          Nothing reachable from an MLDCS_HOT_PATH function may
                        allocate: no new/malloc/make_unique, no fresh owning
                        container (local declaration or temporary).  Growth
                        of caller-owned scratch (members, reference
                        parameters) is the engine's amortized-zero pattern
                        and is deliberately NOT a sink.  MLDCS_ALLOC_OK on a
                        callee stops traversal into it.

  lock-discipline       Nothing reachable from an MLDCS_NO_LOCK function may
                        construct a lock/guard type, call lock/wait/join, or
                        sleep.

  tolerance-audit       In src/geometry/ and src/core/, raw ==/!= between
                        floating-point expressions must go through the
                        geom:: tolerance helpers (approx_equal & friends,
                        kTol/kAngleTol).  --strict-relational extends the
                        audit to </<=/>/>= (heuristic: template brackets are
                        excluded by token context).

  telemetry-stub-parity In src/obs/ headers with both MLDCS_ENABLE_TELEMETRY
                        branches, every public function of the ON branch
                        must exist in the OFF stub with the same normalized
                        signature, and vice versa — the kill switch must
                        never change what compiles.

  event-vocabulary      The EventType enum, the event_type_name switch, and
                        tools/obslib.py EVENT_TYPES must agree exactly, and
                        every emit_event call site outside src/obs/ must
                        pass a literal, registered EventType member.
"""

from __future__ import annotations

import dataclasses
import os
import re
from collections import deque

RULES = (
    "hot-no-alloc",
    "lock-discipline",
    "tolerance-audit",
    "telemetry-stub-parity",
    "event-vocabulary",
)


@dataclasses.dataclass
class Finding:
    rule: str
    file: str       # root-relative path
    line: int
    message: str
    key: str        # stable id for baseline matching (no line numbers)

    def text(self) -> str:
        return f"{self.file}:{self.line}: [{self.rule}] {self.message}"

    def as_json(self) -> dict:
        return dataclasses.asdict(self)


class Ctx:
    def __init__(self, root: str, strict_relational: bool = False):
        self.root = os.path.abspath(root)
        self.strict_relational = strict_relational

    def rel(self, path: str) -> str:
        return os.path.relpath(os.path.abspath(path), self.root).replace(
            os.sep, "/")


# --- Reachability rules (1, 2) ---------------------------------------------

ALLOC_SINKS = frozenset(("new", "alloc-call", "local-container",
                         "container-temp"))
LOCK_SINKS = frozenset(("lock-type", "lock-call"))

#: Callees the lock-discipline walk never descends into: hand-audited
#: lock-free by construction.  obs::PhaseScope (obs/profiler.hpp) is two
#: relaxed thread-local stores — woven through MLDCS_NO_LOCK shard bodies
#: to tag profiler samples, and safe there by design.
LOCK_FREE_CALLEES = frozenset(("PhaseScope",))


def _reach(model, ctx, rule, root_annot, stop_annot, sink_kinds, what,
           skip_callees=frozenset()):
    """Shared engine: BFS from every function annotated `root_annot`,
    flagging sinks of `sink_kinds` in every reachable definition.
    Calls to names in `skip_callees` are not followed."""
    roots = [f for f in model.functions
             if root_annot in f.annotations
             and (stop_annot is None or stop_annot not in f.annotations)]
    findings = []
    # parents: function -> (caller, call line) for the witness path.
    seen: dict[int, tuple] = {}
    queue = deque()
    for r in roots:
        if id(r) not in seen:
            seen[id(r)] = (r, None, None)
            queue.append(r)
    reachable = []
    while queue:
        fn = queue.popleft()
        reachable.append(fn)
        for call in fn.calls:
            if call.name in skip_callees:
                continue
            if model.allowed(rule, fn.file, call.line):
                continue
            for callee in model.defs_named(call.name):
                if stop_annot and stop_annot in callee.annotations:
                    continue
                if id(callee) not in seen:
                    seen[id(callee)] = (callee, fn, call.line)
                    queue.append(callee)
    def path_of(fn):
        parts = [fn.qname]
        cur = fn
        for _ in range(32):
            _, parent, _line = seen[id(cur)]
            if parent is None:
                break
            parts.append(parent.qname)
            cur = parent
        return " <- ".join(parts)
    for fn in reachable:
        for s in fn.sinks:
            if s.kind not in sink_kinds:
                continue
            if model.allowed(rule, fn.file, s.line):
                continue
            rel = ctx.rel(fn.file)
            findings.append(Finding(
                rule, rel, s.line,
                f"{s.label} in '{fn.qname}' ({what}; reachable: "
                f"{path_of(fn)})",
                f"{rule}:{rel}:{fn.qname}:{s.label}"))
    return findings


def rule_hot_no_alloc(model, ctx):
    return _reach(model, ctx, "hot-no-alloc", "MLDCS_HOT_PATH",
                  "MLDCS_ALLOC_OK", ALLOC_SINKS, "allocates on a hot path")


def rule_lock_discipline(model, ctx):
    return _reach(model, ctx, "lock-discipline", "MLDCS_NO_LOCK", None,
                  LOCK_SINKS, "may block a lock-free path",
                  skip_callees=LOCK_FREE_CALLEES)


# --- Rule 3: tolerance-audit ------------------------------------------------

AUDIT_DIRS = ("src/geometry/", "src/core/")
AUDIT_EXCLUDE = ("src/geometry/tolerance.hpp",)

# Window boundaries when extracting comparison operands.
_BOUNDS = frozenset((";", ",", "{", "}", "?", ":", "&&", "||", "=", "==",
                     "!=", "<", ">", "<=", ">=", "(", ")", "[", "]",
                     "return", "if", "while", "for", "!"))

_OPEN = {"(": ")", "[": "]", "{": "}"}
_CLOSE = {")": "(", "]": "[", "}": "{"}


def _operand_window(toks, i, step, hi, lo):
    """Tokens of the operand next to the comparison at `i`, walking by
    `step` (+1 right, -1 left) until a same-depth boundary."""
    out = []
    depth = 0
    j = i + step
    while lo <= j < hi:
        t = toks[j]
        v = t.val
        if t.kind == "p":
            opening = v in _OPEN if step > 0 else v in _CLOSE
            closing = v in _CLOSE if step > 0 else v in _OPEN
            if opening:
                depth += 1
            elif closing:
                if depth == 0:
                    break
                depth -= 1
        if depth == 0 and t.kind in ("p", "id") and v in _BOUNDS:
            break
        out.append(t)
        j += step
    return out


def _is_doubleish(window, fn, model):
    for k, t in enumerate(window):
        if t.kind == "fnum":
            return True
        if t.kind == "id":
            v = t.val
            if v in ("double", "float"):
                return True
            if v in fn.local_doubles or v in model.double_globals:
                return True
            nxt = window[k + 1] if k + 1 < len(window) else None
            prev = window[k - 1] if k > 0 else None
            is_call = bool(nxt and nxt.kind == "p" and nxt.val == "(")
            if is_call and v in model.double_funcs:
                return True
            if not is_call and prev and prev.kind == "p" \
                    and prev.val in (".", "->") and v in model.double_fields:
                return True
            if is_call and prev and prev.kind == "p" \
                    and prev.val in (".", "->") and v in model.double_funcs:
                return True
    return False


def rule_tolerance_audit(model, ctx):
    findings = []
    for fn in model.functions:
        rel = ctx.rel(fn.file)
        if not rel.startswith(AUDIT_DIRS) or rel in AUDIT_EXCLUDE:
            continue
        if fn.body is None:
            continue
        lx = model.lexed[fn.file]
        toks = lx.tokens
        lo, hi = fn.body
        ops = ("==", "!=")
        for j in range(lo, hi):
            t = toks[j]
            if t.kind != "p":
                continue
            strict = False
            if t.val in ops:
                pass
            elif ctx.strict_relational and t.val in ("<", "<=", ">", ">="):
                strict = True
                # Exclude template-bracket lookalikes: '<'/'>' adjacent to
                # another angle, a comma at template position, or following
                # a known type-ish identifier sequence 'std ::'.
                if t.val in ("<", ">"):
                    prev = toks[j - 1] if j > lo else None
                    nxt = toks[j + 1] if j + 1 < hi else None
                    if prev and prev.kind == "p":
                        continue
                    if nxt and nxt.kind == "p" and nxt.val not in ("(", "-"):
                        continue
            else:
                continue
            left = _operand_window(toks, j, -1, hi, lo)
            right = _operand_window(toks, j, +1, hi, lo)
            if not left or not right:
                continue
            if not (_is_doubleish(left, fn, model)
                    or _is_doubleish(right, fn, model)):
                continue
            if model.allowed("tolerance-audit", fn.file, t.line):
                continue
            hint = ("definitely_less/approx_leq" if strict
                    else "approx_equal/approx_zero")
            findings.append(Finding(
                "tolerance-audit", rel, t.line,
                f"raw '{t.val}' on floating-point operands in '{fn.qname}' "
                f"— use geom::{hint} (kTol) instead",
                f"tolerance-audit:{rel}:{fn.qname}:{t.val}@"
                f"{t.line - fn.line}"))
    return findings


# --- Rule 4: telemetry-stub-parity ------------------------------------------

_SIG_DROP = frozenset(("inline", "static", "constexpr", "virtual",
                       "explicit", "friend", "noexcept"))


def _norm_type(words):
    """Canonicalize a type token list: drop annotations/attributes and
    squeeze spacing so 'std :: uint32_t' == 'std::uint32_t'."""
    out = []
    for w in words:
        if w in _SIG_DROP:
            continue
        out.append(w)
    s = " ".join(out)
    s = re.sub(r"\[\s*\[.*?\]\s*\]", "", s)
    s = s.replace(" ::", "::").replace(":: ", "::")
    s = re.sub(r"\s+([<>*&,()])", r"\1", s)
    s = re.sub(r"([<>*&,()])\s+", r"\1", s)
    return s.strip()


def _norm_param(param: str) -> str:
    words = param.split()
    if "=" in words:
        words = words[:words.index("=")]
    # Drop a trailing parameter *name*: an identifier that is not the sole
    # token and is not glued to a '::' qualifier.
    if len(words) >= 2 and re.fullmatch(r"[A-Za-z_]\w*", words[-1]) \
            and words[-2] != "::" and words[-1] not in ("int", "long",
                                                        "short", "char",
                                                        "unsigned", "double",
                                                        "float", "bool"):
        words = words[:-1]
    return _norm_type(words)


def _signature(fn):
    from model import _split_top
    params = tuple(_norm_param(p) for p in _split_top(fn.params))
    return (_norm_type(fn.ret.split()), params)


def rule_telemetry_stub_parity(model, ctx):
    findings = []
    by_file: dict[str, dict] = {}
    for fn in model.functions + model.declarations:
        rel = ctx.rel(fn.file)
        if not (rel.startswith("src/obs/") and rel.endswith(".hpp")):
            continue
        if fn.pp is None or fn.access != "public":
            continue
        if fn.cls is not None and (fn.name == fn.cls
                                   or fn.name.startswith("~")
                                   or fn.name == "operator"):
            continue
        key = (fn.cls, fn.name)
        slot = by_file.setdefault(rel, {}).setdefault(
            key, {"on": [], "off": []})
        slot[fn.pp].append(fn)
    for rel, entries in sorted(by_file.items()):
        for (cls, name), slot in sorted(entries.items(),
                                        key=lambda kv: (kv[0][0] or "",
                                                        kv[0][1])):
            qual = f"{cls}::{name}" if cls else name
            on_sigs = sorted(_signature(f) for f in slot["on"])
            off_sigs = sorted(_signature(f) for f in slot["off"])
            if on_sigs == off_sigs:
                continue
            present = slot["on"] or slot["off"]
            line = present[0].line
            fpath = present[0].file
            if model.allowed("telemetry-stub-parity", fpath, line):
                continue
            if not slot["off"]:
                msg = (f"'{qual}' exists in the telemetry-ON branch but has "
                       f"no stub in the OFF branch")
            elif not slot["on"]:
                msg = (f"'{qual}' exists only in the telemetry-OFF stub — "
                       f"dead surface or missing ON declaration")
            else:
                msg = (f"'{qual}' signature differs between telemetry "
                       f"branches: ON {on_sigs} vs OFF {off_sigs}")
            findings.append(Finding(
                "telemetry-stub-parity", rel, line, msg,
                f"telemetry-stub-parity:{rel}:{qual}"))
    return findings


# --- Rule 5: event-vocabulary -----------------------------------------------

def _enum_members(model, ctx):
    """EventType members from src/obs/event_log.hpp, in order."""
    for path, lx in model.lexed.items():
        if not ctx.rel(path).endswith("src/obs/event_log.hpp") and \
                ctx.rel(path) != "src/obs/event_log.hpp":
            continue
        toks = lx.tokens
        for i in range(len(toks) - 2):
            if toks[i].val == "enum" and toks[i + 1].val == "class" \
                    and toks[i + 2].val == "EventType":
                j = i + 3
                while j < len(toks) and toks[j].val != "{":
                    j += 1
                members = []
                depth = 0
                for k in range(j, len(toks)):
                    v = toks[k].val
                    if v == "{":
                        depth += 1
                    elif v == "}":
                        break
                    elif toks[k].kind == "id" and depth == 1:
                        members.append((v, toks[k].line))
                return path, members
    return None, []


def _switch_strings(model, ctx):
    """(member -> string) pairs from the event_type_name switch."""
    for fn in model.functions:
        if fn.name != "event_type_name" or fn.body is None:
            continue
        toks = model.lexed[fn.file].tokens
        lo, hi = fn.body
        mapping = []
        j = lo
        while j < hi:
            if toks[j].val == "case" and j + 3 < hi \
                    and toks[j + 1].val == "EventType":
                member = toks[j + 3].val
                k = j + 4
                while k < hi and toks[k].val != "return":
                    k += 1
                if k + 1 < hi and toks[k + 1].kind == "str":
                    mapping.append((member, toks[k + 1].val.strip('"'),
                                    toks[j].line))
                j = k
            j += 1
        return fn.file, mapping
    return None, []


_PY_SET_RE = re.compile(r"EVENT_TYPES\s*=\s*frozenset\(\{(.*?)\}\)",
                        re.DOTALL)


def rule_event_vocabulary(model, ctx):
    findings = []
    hpp_path, members = _enum_members(model, ctx)
    if hpp_path is None:
        return findings  # tree without an event log: nothing to check
    member_names = {m for m, _ in members}
    cpp_path, mapping = _switch_strings(model, ctx)
    rel_hpp = ctx.rel(hpp_path)

    def emit(path, line, msg, keyctx):
        rel = ctx.rel(path)
        if not model.allowed("event-vocabulary", path, line):
            findings.append(Finding("event-vocabulary", rel, line, msg,
                                    f"event-vocabulary:{rel}:{keyctx}"))

    covered = {m for m, _, _ in mapping}
    strings = [s for _, s, _ in mapping]
    if cpp_path is not None:
        for m, line in members:
            if m not in covered:
                emit(cpp_path, 1,
                     f"EventType::{m} has no case in event_type_name — "
                     f"its events would export as \"unknown\"", f"switch:{m}")
        for m, s, line in mapping:
            if m not in member_names:
                emit(cpp_path, line,
                     f"event_type_name names unknown member EventType::{m}",
                     f"switch:{m}")
        dup = {s for s in strings if strings.count(s) > 1}
        for s in sorted(dup):
            emit(cpp_path, 1,
                 f"event_type_name string \"{s}\" is not unique — JSONL "
                 f"consumers cannot distinguish the types", f"dup:{s}")

    # tools/obslib.py EVENT_TYPES parity (only when the tree ships it).
    obslib = os.path.join(ctx.root, "tools", "obslib.py")
    if os.path.isfile(obslib):
        with open(obslib, encoding="utf-8") as f:
            text = f.read()
        m = _PY_SET_RE.search(text)
        if m:
            py_types = set(re.findall(r"[\"']([\w]+)[\"']", m.group(1)))
            cpp_types = set(strings)
            line = text[:m.start()].count("\n") + 1
            for s in sorted(cpp_types - py_types):
                emit(obslib, line,
                     f"event type \"{s}\" emitted by C++ but missing from "
                     f"obslib EVENT_TYPES — load_events would reject it",
                     f"obslib:{s}")
            for s in sorted(py_types - cpp_types):
                emit(obslib, line,
                     f"obslib EVENT_TYPES lists \"{s}\" which no EventType "
                     f"maps to — stale vocabulary entry", f"obslib:{s}")

    # Emit sites: literal registered members only, outside src/obs/.
    for path, lx in model.lexed.items():
        rel = ctx.rel(path)
        if rel.startswith("src/obs/"):
            continue
        toks = lx.tokens
        for i, t in enumerate(toks):
            if t.kind != "id" or t.val != "emit_event":
                continue
            if i + 1 >= len(toks) or toks[i + 1].val != "(":
                continue
            # first argument tokens up to the top-level comma
            depth = 0
            arg = []
            for k in range(i + 1, min(i + 40, len(toks))):
                v = toks[k].val
                if v == "(":
                    depth += 1
                    if depth == 1:
                        continue
                elif v == ")":
                    depth -= 1
                    if depth == 0:
                        break
                elif v == "," and depth == 1:
                    break
                arg.append(toks[k])
            ids = [a.val for a in arg if a.kind == "id"]
            if len(ids) >= 2 and ids[-2] == "EventType":
                if ids[-1] not in member_names:
                    emit(path, t.line,
                         f"emit_event uses unregistered EventType::"
                         f"{ids[-1]} (not in {rel_hpp})", f"emit:{ids[-1]}")
            else:
                expr = " ".join(a.val for a in arg)
                emit(path, t.line,
                     f"emit_event first argument '{expr}' is not a literal "
                     f"EventType member — vocabulary cannot be audited "
                     f"statically", f"emit-nonliteral:{expr}")
    return findings


RULE_FUNCS = {
    "hot-no-alloc": rule_hot_no_alloc,
    "lock-discipline": rule_lock_discipline,
    "tolerance-audit": rule_tolerance_audit,
    "telemetry-stub-parity": rule_telemetry_stub_parity,
    "event-vocabulary": rule_event_vocabulary,
}
