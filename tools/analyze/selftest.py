#!/usr/bin/env python3
"""Self-test for mldcs-analyze: the fixture corpus must reproduce the
golden findings exactly, every rule must catch at least one seeded
violation, the clean fixture must stay silent, and baseline suppression
must turn the same run green.

Run directly or via ctest (test name `analyze.selftest`):

    python3 tools/analyze/selftest.py            # check
    python3 tools/analyze/selftest.py --update   # regenerate expected.json
"""

from __future__ import annotations

import json
import os
import subprocess
import sys
import tempfile

HERE = os.path.dirname(os.path.abspath(__file__))
FIXTURES = os.path.join(HERE, "fixtures")
EXPECTED = os.path.join(FIXTURES, "expected.json")
ANALYZER = os.path.join(HERE, "mldcs_analyze.py")

CLEAN_FILES = ("src/core/hot_alloc_ok.cpp",
               "src/core/phase_scope_ok.cpp")


def run_analyzer(extra):
    with tempfile.NamedTemporaryFile(suffix=".json", delete=False) as tf:
        out_path = tf.name
    try:
        proc = subprocess.run(
            [sys.executable, ANALYZER, "--root", FIXTURES,
             "--json-out", out_path] + extra,
            capture_output=True, text=True)
        with open(out_path, encoding="utf-8") as f:
            report = json.load(f)
    finally:
        os.unlink(out_path)
    return proc, report


def main(argv) -> int:
    update = "--update" in argv
    proc, report = run_analyzer([])
    findings = [
        {"rule": f["rule"], "file": f["file"], "line": f["line"]}
        for f in report["findings"]
    ]
    findings.sort(key=lambda f: (f["file"], f["line"], f["rule"]))

    errors = []
    if proc.returncode != 1:
        errors.append(f"expected exit 1 on the fixture corpus, got "
                      f"{proc.returncode}\nstderr: {proc.stderr}")

    rules_hit = {f["rule"] for f in findings}
    from rules import RULES
    for r in RULES:
        if r not in rules_hit:
            errors.append(f"rule '{r}' caught no seeded violation")

    for cf in CLEAN_FILES:
        hits = [f for f in findings if f["file"] == cf]
        if hits:
            errors.append(f"clean fixture {cf} produced findings: {hits}")

    if update:
        with open(EXPECTED, "w", encoding="utf-8") as f:
            json.dump(findings, f, indent=2)
            f.write("\n")
        print(f"selftest: wrote {len(findings)} golden findings to "
              f"{os.path.relpath(EXPECTED)}")
    else:
        try:
            with open(EXPECTED, encoding="utf-8") as f:
                golden = json.load(f)
        except OSError as e:
            errors.append(f"no golden file ({e}); run with --update")
            golden = []
        if not errors and findings != golden:
            got = {(f["file"], f["line"], f["rule"]) for f in findings}
            want = {(f["file"], f["line"], f["rule"]) for f in golden}
            for miss in sorted(want - got):
                errors.append(f"missing expected finding: {miss}")
            for extra in sorted(got - want):
                errors.append(f"unexpected finding: {extra}")

    # Baseline suppression: baselining every finding must turn the run
    # green (exit 0, everything suppressed) with no stale entries.
    baseline = [{"key": f["key"], "reason": "selftest suppression"}
                for f in report["findings"]]
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump(baseline, tf)
        bl_path = tf.name
    try:
        proc2, report2 = run_analyzer(["--baseline", bl_path])
    finally:
        os.unlink(bl_path)
    if proc2.returncode != 0:
        errors.append(f"fully-baselined run should exit 0, got "
                      f"{proc2.returncode}\nstdout: {proc2.stdout}")
    if report2["findings"]:
        errors.append(f"baselined run still reports: {report2['findings']}")
    if len(report2["suppressed"]) != len(report["findings"]):
        errors.append("baselined run suppressed "
                      f"{len(report2['suppressed'])} of "
                      f"{len(report['findings'])} findings")

    # A stale baseline entry must be detected (warned, not fatal).
    stale_entry = [{"key": "hot-no-alloc:src/nope.cpp:gone:new-expression",
                    "reason": "stale on purpose"}]
    with tempfile.NamedTemporaryFile("w", suffix=".json",
                                     delete=False) as tf:
        json.dump(stale_entry, tf)
        bl_path = tf.name
    try:
        proc3, report3 = run_analyzer(["--baseline", bl_path])
    finally:
        os.unlink(bl_path)
    if report3["stale_baseline"] != [stale_entry[0]["key"]]:
        errors.append(f"stale baseline entry not reported: "
                      f"{report3['stale_baseline']}")

    if errors:
        for e in errors:
            print(f"selftest: FAIL: {e}")
        return 1
    print(f"selftest: OK ({len(findings)} findings match golden; all "
          f"{len(rules_hit)} rules fire; clean fixtures silent; baseline "
          f"round-trip green)")
    return 0


if __name__ == "__main__":
    sys.path.insert(0, HERE)
    sys.exit(main(sys.argv[1:]))
