"""Source model for mldcs-analyze: a C++ token frontend.

The analyzer needs four views of the tree that no off-the-shelf linter
provides together:

  * function definitions with their *project annotations* (MLDCS_HOT_PATH /
    MLDCS_NO_LOCK / MLDCS_ALLOC_OK from src/core/annotations.hpp),
  * a call graph good enough for reachability ("what can this hot root
    reach"),
  * both branches of `#if MLDCS_ENABLE_TELEMETRY` *simultaneously* (a real
    compiler frontend only ever sees one),
  * inline suppression markers (`// mldcs-analyze:allow(<rule>)`).

This module implements the token frontend: a hand-rolled C++ lexer plus a
scope-tracking pass that extracts functions, fields, calls, local
owning-container declarations, and lock/allocation sink tokens.  It is the
*reference* frontend — deterministic, dependency-free, and what CI gates
on.  A libclang frontend (clangfe.py) can replace the call-graph/function
extraction where python3-clang is installed; rules that need both
preprocessor branches always run on this model.

Deliberate over-approximations (soundness posture, see
docs/CORRECTNESS.md):

  * Call edges are by *name*: a call site `f(...)` edges to every known
    definition named `f`.  False edges are possible; missed edges only
    happen through constructors and type-erasure (std::function), which is
    exactly what the runtime AllocGuard/LockGuard interposer cross-checks.
  * Growth of caller-owned scratch (members, reference parameters) is not
    an allocation sink — that is the amortized-zero steady-state pattern
    the engine is built on.  Fresh owning containers and new/malloc are.
"""

from __future__ import annotations

import dataclasses
import re

# --- Lexing -----------------------------------------------------------------

ALLOW_RE = re.compile(r"mldcs-analyze:allow\(([A-Za-z0-9_,\- ]+)\)")

KEYWORDS = frozenset(
    """alignas alignof asm auto bool break case catch char class co_await
    co_return co_yield concept const consteval constexpr constinit
    const_cast continue decltype default delete do double dynamic_cast else
    enum explicit export extern false float for friend goto if inline int
    long mutable namespace new noexcept nullptr operator private protected
    public register reinterpret_cast requires return short signed sizeof
    static static_assert static_cast struct switch template this
    thread_local throw true try typedef typeid typename union unsigned
    using virtual void volatile wchar_t while""".split()
)

# Tokens that can never be a call name even though they precede a '('.
NON_CALL_NAMES = frozenset(
    """if for while switch return sizeof alignof alignas decltype catch
    static_cast dynamic_cast reinterpret_cast const_cast typeid noexcept
    assert defined throw new delete""".split()
)

PUNCT3 = ("<<=", ">>=", "...", "->*")
PUNCT2 = (
    "::", "->", "++", "--", "<<", ">>", "<=", ">=", "==", "!=", "&&", "||",
    "+=", "-=", "*=", "/=", "%=", "&=", "|=", "^=",
)


@dataclasses.dataclass
class Tok:
    kind: str  # 'id' | 'num' | 'fnum' | 'str' | 'chr' | 'p' (punct)
    val: str
    line: int
    pp: str | None = None  # telemetry branch: 'on' | 'off' | None


class Lexed:
    """One file reduced to tokens + per-line suppression markers."""

    def __init__(self, path: str, tokens: list[Tok], allows: dict[int, set]):
        self.path = path
        self.tokens = tokens
        self.allows = allows  # line -> set of rule names allowed there

    def allowed(self, rule: str, line: int) -> bool:
        """True if `rule` is suppressed on `line` (marker on the same line
        or alone on the line above)."""
        for ln in (line, line - 1):
            rules = self.allows.get(ln)
            if rules and (rule in rules or "*" in rules):
                return True
        return False


def lex(path: str, text: str) -> Lexed:
    tokens: list[Tok] = []
    allows: dict[int, set] = {}
    i, n, line = 0, len(text), 1
    # Telemetry-branch tracking: a stack of preprocessor conditionals, each
    # 'on'/'off' (a MLDCS_ENABLE_TELEMETRY branch) or None (unrelated).
    pp_stack: list[str | None] = []

    def cur_pp() -> str | None:
        for s in reversed(pp_stack):
            if s is not None:
                return s
        return None

    def note_allow(comment: str, ln: int) -> None:
        m = ALLOW_RE.search(comment)
        if m:
            rules = {r.strip() for r in m.group(1).split(",") if r.strip()}
            allows.setdefault(ln, set()).update(rules)

    while i < n:
        c = text[i]
        if c == "\n":
            line += 1
            i += 1
            continue
        if c in " \t\r\f\v":
            i += 1
            continue
        # Preprocessor directive: consume the (continued) line.
        if c == "#" and (not tokens or tokens[-1].line != line):
            j = i
            while j < n:
                if text[j] == "\n" and text[j - 1] != "\\":
                    break
                j += 1
            directive = text[i:j]
            d = directive.replace("\\\n", " ")
            dm = re.match(r"#\s*(\w+)\s*(.*)", d)
            if dm:
                kind, rest = dm.group(1), dm.group(2).strip()
                rest_nc = rest.split("//")[0].split("/*")[0].strip()
                if kind in ("if", "ifdef", "ifndef"):
                    state: str | None = None
                    if re.fullmatch(r"MLDCS_ENABLE_TELEMETRY", rest_nc) or \
                       re.fullmatch(r"defined\s*\(\s*MLDCS_ENABLE_TELEMETRY\s*\)",
                                    rest_nc):
                        state = "off" if kind == "ifndef" else "on"
                    elif re.fullmatch(r"!\s*MLDCS_ENABLE_TELEMETRY", rest_nc):
                        state = "off"
                    pp_stack.append(state)
                elif kind in ("else", "elif") and pp_stack:
                    top = pp_stack[-1]
                    if top == "on":
                        pp_stack[-1] = "off"
                    elif top == "off":
                        pp_stack[-1] = "on"
                elif kind == "endif" and pp_stack:
                    pp_stack.pop()
            line += directive.count("\n")
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "/":
            j = text.find("\n", i)
            j = n if j < 0 else j
            note_allow(text[i:j], line)
            i = j
            continue
        if c == "/" and i + 1 < n and text[i + 1] == "*":
            j = text.find("*/", i + 2)
            j = n - 2 if j < 0 else j
            comment = text[i:j + 2]
            for off, part in enumerate(comment.split("\n")):
                note_allow(part, line + off)
            line += comment.count("\n")
            i = j + 2
            continue
        if c == '"':
            if tokens and tokens[-1].kind == "id" and tokens[-1].val == "R":
                # Raw string: R"delim( ... )delim"
                m = re.match(r'R"([^(]*)\(', text[i - 1:])
                if m:
                    end = text.find(")" + m.group(1) + '"', i)
                    end = n - 1 if end < 0 else end + len(m.group(1)) + 2
                    tokens.pop()
                    tokens.append(Tok("str", text[i:end], line, cur_pp()))
                    line += text.count("\n", i, end)
                    i = end
                    continue
            j = i + 1
            while j < n and text[j] != '"':
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("str", text[i:j + 1], line, cur_pp()))
            i = j + 1
            continue
        if c == "'":
            j = i + 1
            while j < n and text[j] != "'":
                j += 2 if text[j] == "\\" else 1
            tokens.append(Tok("chr", text[i:j + 1], line, cur_pp()))
            i = j + 1
            continue
        if c.isdigit() or (c == "." and i + 1 < n and text[i + 1].isdigit()):
            m = re.match(r"(0[xX][0-9a-fA-F'.pP+-]+|[\d'.]+([eE][+-]?\d+)?)"
                         r"[uUlLfFzZ]*", text[i:])
            lit = m.group(0)
            if lit.lower().startswith("0x"):
                isf = "p" in lit.lower()
            else:
                isf = "." in lit or "e" in lit.lower() or \
                      lit.rstrip("uUlLzZ").endswith(("f", "F"))
            tokens.append(Tok("fnum" if isf else "num", lit, line, cur_pp()))
            i += len(lit)
            continue
        if c.isalpha() or c == "_":
            m = re.match(r"[A-Za-z_]\w*", text[i:])
            tokens.append(Tok("id", m.group(0), line, cur_pp()))
            i += len(m.group(0))
            continue
        for p in PUNCT3:
            if text.startswith(p, i):
                tokens.append(Tok("p", p, line, cur_pp()))
                i += len(p)
                break
        else:
            for p in PUNCT2:
                if text.startswith(p, i):
                    tokens.append(Tok("p", p, line, cur_pp()))
                    i += len(p)
                    break
            else:
                tokens.append(Tok("p", c, line, cur_pp()))
                i += 1
    return Lexed(path, tokens, allows)


# --- Extraction -------------------------------------------------------------

ANNOTATIONS = ("MLDCS_HOT_PATH", "MLDCS_NO_LOCK", "MLDCS_ALLOC_OK")

OWNING_CONTAINERS = frozenset(
    """vector string deque list map unordered_map set unordered_set multimap
    multiset unordered_multimap unordered_multiset basic_string stringstream
    ostringstream istringstream function valarray""".split()
)

ALLOC_CALLS = frozenset(
    """malloc calloc realloc strdup aligned_alloc make_unique make_shared
    to_string""".split()
)

LOCK_TYPES = frozenset(
    """mutex shared_mutex recursive_mutex timed_mutex recursive_timed_mutex
    lock_guard unique_lock scoped_lock shared_lock condition_variable
    condition_variable_any""".split()
)
LOCK_CALLS = frozenset(
    """lock unlock try_lock wait wait_for wait_until join sleep_for
    sleep_until pthread_mutex_lock pthread_cond_wait""".split()
)


@dataclasses.dataclass
class Sink:
    kind: str  # 'new' | 'alloc-call' | 'local-container' | 'container-temp'
               # | 'lock-type' | 'lock-call'
    label: str
    line: int


@dataclasses.dataclass
class Call:
    name: str       # last identifier ("relay_forwarding_set")
    line: int
    method: bool    # true for x.f(...) / x->f(...)


@dataclasses.dataclass
class Func:
    file: str
    line: int
    name: str                 # short name
    qname: str                # Scope::qualified name
    cls: str | None           # enclosing (or explicit A::) class, if any
    params: str               # raw parameter-list text
    ret: str                  # raw return-type text
    annotations: set
    is_def: bool
    pp: str | None            # 'on'/'off' telemetry branch, or None
    access: str = "public"    # access specifier at the declaration point
    body: tuple | None = None  # (lo, hi) token span of the body, if a def
    calls: list = dataclasses.field(default_factory=list)
    sinks: list = dataclasses.field(default_factory=list)
    local_doubles: set = dataclasses.field(default_factory=set)


class Model:
    """Whole-project model: functions, fields, call graph, markers."""

    def __init__(self):
        self.functions: list[Func] = []       # definitions
        self.declarations: list[Func] = []    # prototype-only
        self.double_fields: set = set()       # struct/class members of double
        self.double_funcs: set = set()        # names returning double
        self.double_globals: set = set()      # namespace-scope double consts
        self.lexed: dict[str, Lexed] = {}
        self._by_name: dict[str, list] = {}

    def add_file(self, path: str, text: str) -> None:
        lx = lex(path, text)
        self.lexed[path] = lx
        _Extractor(self, lx).run()

    def finish(self) -> None:
        self._by_name = {}
        annotated = {}

        def arity(f):
            return len(_split_top(f.params))

        for f in self.functions + self.declarations:
            if f.ret.strip().startswith("double") or \
               f.ret.strip() == "double":
                self.double_funcs.add(f.name)
            for a in f.annotations:
                annotated.setdefault((f.cls, f.name, arity(f)),
                                     set()).add(a)
        # An annotation on any declaration or definition of a
        # (class, name, arity) applies to every definition of it: headers
        # carry the contract, .cpp files carry the body.  Arity keeps
        # differently-annotated overloads apart (e.g. the allocating
        # convenience overload vs the workspace hot overload).
        for f in self.functions:
            extra = annotated.get((f.cls, f.name, arity(f)))
            if extra:
                f.annotations |= extra
        for f in self.functions:
            self._by_name.setdefault(f.name, []).append(f)

    def defs_named(self, name: str) -> list:
        return self._by_name.get(name, [])

    def allowed(self, rule: str, path: str, line: int) -> bool:
        lx = self.lexed.get(path)
        return bool(lx) and lx.allowed(rule, line)


class _Extractor:
    """One pass over a file's tokens with a brace-scope stack."""

    def __init__(self, model: Model, lx: Lexed):
        self.m = model
        self.lx = lx
        self.toks = lx.tokens

    def run(self) -> None:
        toks = self.toks
        scopes: list[tuple] = []  # ('ns'|'class'|'enum'|'block'|'skip', name)
        self.access: list[str] = []  # parallel to scopes; "" for non-class
        decl_start = 0
        i = 0
        n = len(toks)
        while i < n:
            t = toks[i]
            if t.kind == "p" and t.val == ";":
                self._maybe_declaration(decl_start, i, scopes)
                decl_start = i + 1
                i += 1
                continue
            if t.kind == "p" and t.val == "{":
                kind, name = self._classify_brace(decl_start, i, scopes)
                if kind == "fn":
                    end = self._match_brace(i)
                    fn = self._extract_function(decl_start, i, end, scopes,
                                                is_def=True)
                    if fn is not None:
                        fn.body = (i + 1, end)
                        self._scan_body(fn, i + 1, end)
                    i = end + 1
                    decl_start = i
                    continue
                scopes.append((kind, name))
                if kind == "class":
                    decl = toks[decl_start:i]
                    is_struct = any(t2.kind == "id"
                                    and t2.val in ("struct", "union")
                                    for t2 in decl)
                    self.access.append("public" if is_struct else "private")
                else:
                    self.access.append("")
                decl_start = i + 1
                i += 1
                continue
            if t.kind == "p" and t.val == "}":
                if scopes:
                    scopes.pop()
                    self.access.pop()
                i += 1
                # consume a trailing ';' of class/enum definitions
                decl_start = i
                continue
            if t.kind == "id" and t.val in ("public", "private", "protected") \
                    and i + 1 < n and toks[i + 1].val == ":":
                if self.access and scopes and scopes[-1][0] == "class":
                    self.access[-1] = t.val
                decl_start = i + 2
                i += 2
                continue
            i += 1

    def _cur_access(self, scopes) -> str:
        if scopes and scopes[-1][0] == "class" and self.access:
            return self.access[-1]
        return "public"

    # -- helpers --

    def _match_brace(self, i: int) -> int:
        depth = 0
        toks = self.toks
        for j in range(i, len(toks)):
            v = toks[j].val
            if toks[j].kind == "p":
                if v == "{":
                    depth += 1
                elif v == "}":
                    depth -= 1
                    if depth == 0:
                        return j
        return len(toks) - 1

    def _classify_brace(self, start: int, i: int, scopes) -> tuple:
        """Decide what the '{' at i opens, looking at tokens[start:i]."""
        toks = self.toks
        decl = toks[start:i]
        in_fn = any(s[0] == "fn" for s in scopes)
        # namespace X { / namespace {
        for k, t in enumerate(decl):
            if t.kind == "id" and t.val == "namespace":
                parts = [x.val for x in decl[k + 1:] if x.kind == "id"]
                return ("ns", "::".join(parts) if parts else "(anon)")
            if t.kind == "id" and t.val in ("class", "struct", "union"):
                # could still be `struct X x = {...}`: require no '=' after
                if any(x.val == "=" for x in decl[k + 1:]):
                    break
                name = None
                for x in decl[k + 1:]:
                    if x.kind == "id" and x.val not in ("final", "alignas"):
                        name = x.val
                    elif x.kind == "p" and x.val in (":", "{"):
                        break
                return ("class", name or "(anon)")
            if t.kind == "id" and t.val == "enum":
                return ("enum", None)
        if in_fn:
            return ("block", None)
        if self._looks_like_function(decl):
            return ("fn", None)
        return ("skip", None)  # brace-init at ns/class scope, extern "C", ...

    @staticmethod
    def _looks_like_function(decl: list) -> bool:
        # Find last top-level ')': a parameter list must exist.
        depth = 0
        last_close = -1
        for k, t in enumerate(decl):
            if t.kind != "p":
                continue
            if t.val == "(":
                depth += 1
            elif t.val == ")":
                depth -= 1
                if depth == 0:
                    last_close = k
        if last_close < 0:
            return False
        # After it: only qualifiers / ctor-init list / trailing return.
        for t in decl[last_close + 1:]:
            if t.kind == "p" and t.val in ("=", ";"):
                # `= default` handled at ';'-declarations, not here
                return False
        return True

    def _extract_function(self, start, brace, end, scopes, is_def):
        toks = self.toks
        decl = toks[start:brace]
        # Parameter list: the parenthesis group whose opening '(' directly
        # follows the function name.  Walk to the FIRST top-level '(' that
        # is preceded by an identifier (or operator token).
        depth = 0
        open_k = close_k = -1
        for k, t in enumerate(decl):
            if t.kind == "p" and t.val == "(":
                if depth == 0 and open_k < 0 and k > 0 and (
                        decl[k - 1].kind == "id"
                        or decl[k - 1].val in (")", "]", ">")
                        or decl[k - 1].val == "operator"):
                    open_k = k
                depth += 1
            elif t.kind == "p" and t.val == ")":
                depth -= 1
                if depth == 0 and open_k >= 0 and close_k < 0:
                    close_k = k
        if open_k < 0 or close_k < 0:
            return None
        # Name (possibly qualified A::B::f) walking left from open_k.
        k = open_k - 1
        name_parts = []
        while k >= 0:
            t = decl[k]
            if t.kind == "id" and t.val not in KEYWORDS:
                name_parts.append(t.val)
                if k >= 1 and decl[k - 1].val == "::":
                    k -= 2
                    # skip template args of the qualifier: A<T>::f
                    continue
                break
            if t.kind == "id" and t.val == "operator":
                name_parts.append("operator")
                break
            if t.kind == "p" and t.val in (">", ")", "]"):
                # operator tokens / template qualifier — give up on name
                break
            break
        if not name_parts:
            return None
        name_parts.reverse()
        name = name_parts[-1]
        if name in KEYWORDS or name in NON_CALL_NAMES:
            return None
        cls = name_parts[-2] if len(name_parts) >= 2 else None
        for s in reversed(scopes):
            if s[0] == "class" and cls is None:
                cls = s[1]
                break
        annotations = {t.val for t in decl
                       if t.kind == "id" and t.val in ANNOTATIONS}
        ret = " ".join(
            t.val for t in decl[:max(0, k)]
            if not (t.kind == "id" and (t.val in ANNOTATIONS
                                        or t.val in ("template", "typename",
                                                     "inline", "static",
                                                     "constexpr", "explicit",
                                                     "virtual", "friend"))))
        ret = re.sub(r"\[\s*\[.*?\]\s*\]", "", ret).strip()
        params = " ".join(t.val for t in decl[open_k + 1:close_k])
        qname = "::".join([s[1] for s in scopes
                           if s[0] in ("ns", "class") and s[1]]
                          + name_parts)
        fn = Func(self.lx.path, decl[open_k].line, name, qname, cls, params,
                  ret, annotations, is_def, decl[open_k].pp,
                  access=self._cur_access(scopes))
        # Constructor-initializer list: record its calls on the ctor.
        if is_def:
            self._scan_calls(fn, start + close_k + 1, brace)
        if cls == name:
            fn.cls = cls  # constructor
        # double parameters -> local double identifiers
        for piece in _split_top(params):
            ws = piece.split()
            if ws and ws[0] in ("double", "float") and len(ws) >= 2:
                pname = ws[-1].lstrip("&*")
                if pname.isidentifier():
                    fn.local_doubles.add(pname)
        target = self.m.functions if is_def else self.m.declarations
        target.append(fn)
        return fn

    def _maybe_declaration(self, start, semi, scopes) -> None:
        toks = self.toks
        decl = toks[start:semi]
        if not decl:
            return
        in_fn = any(s[0] == "fn" for s in scopes)
        in_class = bool(scopes) and scopes[-1][0] == "class"
        at_ns = not scopes or scopes[-1][0] == "ns"
        # Field / global double collection.
        if (in_class or at_ns) and not in_fn:
            words = [t.val for t in decl if t.kind == "id"]
            if "double" in words and "(" not in [t.val for t in decl]:
                names = []
                seen_double = False
                for t in decl:
                    if t.kind == "id" and t.val == "double":
                        seen_double = True
                    elif seen_double and t.kind == "id" and \
                            t.val not in KEYWORDS:
                        names.append(t.val)
                    elif seen_double and t.kind == "p" and t.val == "=":
                        break
                for nm in names:
                    if in_class:
                        self.m.double_fields.add(nm)
                        self.m.double_fields.add(nm.rstrip("_"))
                    else:
                        self.m.double_globals.add(nm)
        if in_fn or (not in_class and not at_ns):
            return
        # Function prototype?
        if any(t.kind == "id" and t.val in ("using", "typedef", "friend")
               for t in decl[:2]):
            # `friend` declarations still carry annotations; keep them.
            if not any(t.val in ANNOTATIONS for t in decl):
                return
        if not self._looks_like_function(decl + [Tok("p", "{", 0)]):
            return
        self._extract_function(start, semi, semi, scopes, is_def=False)

    def _scan_calls(self, fn: Func, lo: int, hi: int) -> None:
        toks = self.toks
        for j in range(lo, hi):
            t = toks[j]
            if t.kind == "id" and j + 1 < hi and toks[j + 1].val == "(" \
                    and t.val not in NON_CALL_NAMES and t.val not in KEYWORDS:
                prev = toks[j - 1] if j > lo else None
                method = bool(prev and prev.kind == "p"
                              and prev.val in (".", "->"))
                fn.calls.append(Call(t.val, t.line, method))

    def _scan_body(self, fn: Func, lo: int, hi: int) -> None:
        """Collect calls, sinks, and local declarations in tokens[lo:hi]."""
        toks = self.toks
        self._scan_calls(fn, lo, hi)
        j = lo
        stmt_start = True  # after { } ;
        class_depth = 0    # inside a function-local struct definition
        class_stack: list[int] = []
        depth = 0
        while j < hi:
            t = toks[j]
            v = t.val
            if t.kind == "p":
                if v == ";":
                    stmt_start = True
                elif v == "{":
                    depth += 1
                    stmt_start = True
                elif v == "}":
                    depth -= 1
                    if class_stack and depth < class_stack[-1]:
                        class_stack.pop()
                    stmt_start = True
                j += 1
                continue
            if t.kind == "id" and v in ("struct", "class", "union"):
                # function-local type definition: treat its braces as class
                # scope (its fields are not local variables).
                k = j + 1
                while k < hi and not (toks[k].kind == "p"
                                      and toks[k].val in ("{", ";", "(")):
                    k += 1
                if k < hi and toks[k].val == "{":
                    class_stack.append(depth + 1)
            in_class_def = bool(class_stack)
            if t.kind == "id":
                # new-expressions
                if v == "new":
                    prev = toks[j - 1] if j > lo else None
                    if not (prev and prev.val == "operator"):
                        fn.sinks.append(Sink("new", "new-expression", t.line))
                elif v in ALLOC_CALLS and _call_paren(toks, j + 1, hi):
                    fn.sinks.append(Sink("alloc-call", v + "()", t.line))
                elif v in LOCK_TYPES:
                    prev = toks[j - 1] if j > lo else None
                    if prev and prev.val == "::":
                        fn.sinks.append(Sink("lock-type", "std::" + v,
                                             t.line))
                elif v in LOCK_CALLS and j + 1 < hi \
                        and toks[j + 1].val == "(":
                    prev = toks[j - 1] if j > lo else None
                    if v in ("pthread_mutex_lock", "pthread_cond_wait") or (
                            prev and prev.kind == "p"
                            and prev.val in (".", "->", "::")):
                        fn.sinks.append(Sink("lock-call", v + "()", t.line))
                # local double declarations (for tolerance-audit)
                if v == "double" and not in_class_def:
                    k = j + 1
                    while k < hi and toks[k].kind == "id" \
                            and toks[k].val in ("const",):
                        k += 1
                    if k < hi and toks[k].kind == "id" \
                            and toks[k].val not in KEYWORDS:
                        fn.local_doubles.add(toks[k].val)
                # owning-container locals and temporaries
                if v == "std" and j + 2 < hi and toks[j + 1].val == "::" \
                        and toks[j + 2].kind == "id" \
                        and toks[j + 2].val in OWNING_CONTAINERS \
                        and not in_class_def:
                    k = j + 3
                    if k < hi and toks[k].val == "<":
                        tdepth = 0
                        while k < hi:
                            if toks[k].val == "<":
                                tdepth += 1
                            elif toks[k].val == ">":
                                tdepth -= 1
                                if tdepth == 0:
                                    k += 1
                                    break
                            elif toks[k].val == ">>":
                                tdepth -= 2
                                if tdepth <= 0:
                                    k += 1
                                    break
                            k += 1
                    ctype = "std::" + toks[j + 2].val
                    if k < hi and toks[k].kind == "p" \
                            and toks[k].val in ("(", "{"):
                        fn.sinks.append(Sink("container-temp",
                                             ctype + " temporary",
                                             toks[j + 2].line))
                    elif k < hi and toks[k].kind == "id" \
                            and toks[k].val not in KEYWORDS \
                            and stmt_start:
                        nxt = toks[k + 1] if k + 1 < hi else None
                        if nxt is None or nxt.val in (";", "=", "(", "{",
                                                      ","):
                            fn.sinks.append(Sink(
                                "local-container",
                                f"local {ctype} '{toks[k].val}'",
                                toks[k].line))
                stmt_start = False
            else:
                stmt_start = False
            j += 1


def _call_paren(toks, j: int, hi: int) -> bool:
    """True if tokens[j:] begin a call argument list, allowing an explicit
    template argument list first: `(`, or `<...>` then `(`."""
    if j < hi and toks[j].val == "(":
        return True
    if j < hi and toks[j].val == "<":
        depth = 0
        while j < hi:
            v = toks[j].val
            if v == "<":
                depth += 1
            elif v == ">":
                depth -= 1
                if depth == 0:
                    return j + 1 < hi and toks[j + 1].val == "("
            elif v in (";", "{", "}"):
                return False
            j += 1
    return False


def _split_top(params: str) -> list:
    """Split a parameter-list string on top-level commas."""
    out, depth, cur = [], 0, []
    for ch in params:
        if ch in "<([{":
            depth += 1
        elif ch in ">)]}":
            depth -= 1
        if ch == "," and depth == 0:
            out.append("".join(cur).strip())
            cur = []
        else:
            cur.append(ch)
    if cur:
        out.append("".join(cur).strip())
    return [p for p in out if p]
