# Miniature obslib for the event-vocabulary fixtures.  "delta" is seeded
# stale (no EventType maps to it); "beta" is deliberately missing so the
# C++-but-not-Python direction fires too.
EVENT_TYPES = frozenset({
    "alpha", "delta",
})
