// Seeded tolerance-audit violations: raw ==/!= on doubles in a geometry
// file.  Integer comparisons and marker-suppressed lines must not fire.
namespace fixture {

inline constexpr double kMagic = 0.25;

double radius_of(int i) { return i * 0.5; }

bool compare(double a, double b, int i, int j) {
  if (a == b) return true;              // raw == on double params
  if (radius_of(i) != kMagic) return false;  // call + global const
  if (i == j) return true;              // ints: not flagged
  // mldcs-analyze:allow(tolerance-audit): exact sentinel check
  if (b == 0.0) return false;           // suppressed
  return a != 1.5;                      // literal operand
}

}  // namespace fixture
