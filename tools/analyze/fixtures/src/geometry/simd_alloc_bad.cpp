// Seeded hot-no-alloc violations in SIMD-kernel shape: a batch geometry
// kernel on the skyline hot path that allocates its lane staging per
// call instead of reusing workspace buffers — directly, and transitively
// through a padding helper.  mldcs-analyze must flag both; the real
// kernels (src/geometry/simd_kernels_impl.hpp) write straight into
// caller-owned SoA arrays and never reach an allocation.
#include <cstddef>
#include <vector>

#define MLDCS_HOT_PATH
#define MLDCS_ALLOC_OK

namespace fixture {

double* pad_batch_to_lane_width(std::size_t n) {
  return new double[((n + 7) / 8) * 8];  // transitive new-expression
}

MLDCS_HOT_PATH void circle_isect_batch(std::size_t n, const double* ax,
                                       double* out) {
  std::vector<double> lanes(n);  // per-call staging buffer
  for (std::size_t i = 0; i < n; ++i) lanes[i] = ax[i] * ax[i];
  double* padded = pad_batch_to_lane_width(n);  // edge into the helper
  for (std::size_t i = 0; i < n; ++i) out[i] = lanes[i] + padded[0];
  delete[] padded;
}

}  // namespace fixture
