#include "obs/event_log.hpp"

namespace fixture {

const char* event_type_name(EventType t) noexcept {
  switch (t) {
    case EventType::kAlpha:
      return "alpha";
    case EventType::kBeta:
      return "beta";
    // seeded: kGamma has no case — exports as "unknown"
  }
  return "unknown";
}

}  // namespace fixture
