#pragma once
// Miniature event vocabulary for the event-vocabulary fixtures.
#include <cstdint>

namespace fixture {

enum class EventType : std::uint8_t {
  kAlpha,
  kBeta,
  kGamma,  // seeded: no case in event_type_name, not in obslib
};

const char* event_type_name(EventType t) noexcept;

std::uint64_t emit_event(EventType type, std::uint32_t a, std::uint32_t b,
                         std::uint64_t parent, std::uint64_t value) noexcept;

}  // namespace fixture
