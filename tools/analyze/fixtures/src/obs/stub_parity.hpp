#pragma once
// Seeded telemetry-stub-parity violations: the OFF stub is missing one
// function, carries one signature mismatch, and grew one extra function.
#include <cstdint>

#ifndef MLDCS_ENABLE_TELEMETRY
#define MLDCS_ENABLE_TELEMETRY 1
#endif

namespace fixture {

#if MLDCS_ENABLE_TELEMETRY

class Meter {
 public:
  void add(std::uint64_t n) noexcept;
  [[nodiscard]] std::uint64_t value() const noexcept;
  void reset() noexcept;  // missing from the OFF stub

 private:
  void internal_helper();  // private: parity not required
};

void meters_flush();

#else  // !MLDCS_ENABLE_TELEMETRY

class Meter {
 public:
  void add(std::uint32_t) noexcept {}  // signature mismatch (uint32 vs 64)
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
  void stub_only_surface() noexcept {}  // exists only in the OFF branch
};

inline void meters_flush() {}

#endif  // MLDCS_ENABLE_TELEMETRY

}  // namespace fixture
