// Seeded hot-no-alloc violations in a profiler-shaped signal handler.
// The real sampling hot path (src/obs/profiler.cpp sigprof_handler) must
// stay allocation-free — a handler that builds its backtrace in a fresh
// heap container is exactly the regression the rule exists to catch.
#include <cstdint>
#include <string>
#include <vector>

#define MLDCS_HOT_PATH
#define MLDCS_NO_LOCK

namespace fixture {

std::uint64_t* g_frames;

std::string frame_label(std::uint64_t pc) {
  return std::to_string(pc);  // transitive alloc-call
}

MLDCS_HOT_PATH MLDCS_NO_LOCK void sigprof_handler_bad(int) {
  std::vector<std::uint64_t> frames;  // fresh local owning container
  frames.push_back(0x1234u);
  g_frames = new std::uint64_t[64];  // new-expression in the handler
  frame_label(frames[0]);  // edge into the allocating symbolizer
}

}  // namespace fixture
