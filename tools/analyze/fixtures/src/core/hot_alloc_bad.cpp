// Seeded hot-no-alloc violations: every sink below must be caught, both
// directly in the annotated root and transitively through the call graph.
#include <memory>
#include <string>
#include <vector>

#define MLDCS_HOT_PATH
#define MLDCS_ALLOC_OK

namespace fixture {

int helper_that_allocates(int n) {
  int* p = new int[static_cast<unsigned>(n)];  // transitive new-expression
  int s = p[0];
  delete[] p;
  return s;
}

std::string helper_two(int n) {
  return std::to_string(n);  // transitive alloc-call
}

MLDCS_HOT_PATH int hot_root(int n) {
  std::vector<int> scratch;  // fresh local owning container
  scratch.push_back(n);
  int s = helper_that_allocates(n);  // edge into helper
  s += static_cast<int>(helper_two(n).size());
  auto owned = std::make_unique<int>(s);  // alloc-call in the root
  return *owned + static_cast<int>(std::vector<int>(4, n).size());  // temp
}

}  // namespace fixture
