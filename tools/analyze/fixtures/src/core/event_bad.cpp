// Seeded event-vocabulary violations at emit sites.
#include "obs/event_log.hpp"

namespace fixture {

void emit_sites(EventType dynamic_type) {
  emit_event(EventType::kAlpha, 1, 2, 0, 0);  // registered: clean
  emit_event(EventType::kBogus, 1, 2, 0, 0);  // unregistered member
  emit_event(dynamic_type, 1, 2, 0, 0);       // non-literal type
}

}  // namespace fixture
