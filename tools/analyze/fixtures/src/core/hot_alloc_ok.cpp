// Clean hot-path patterns: none of these may produce a finding.
#include <vector>

#define MLDCS_HOT_PATH
#define MLDCS_ALLOC_OK

namespace fixture {

struct Workspace {
  std::vector<int> scratch;  // member container: fields are not locals
};

// ALLOC_OK callee: a deliberate allocation subtree the rule must not enter.
MLDCS_ALLOC_OK std::vector<int> build_table(int n) {
  std::vector<int> t(static_cast<unsigned>(n));
  return t;
}

MLDCS_HOT_PATH int hot_clean(Workspace& ws, std::vector<int>& out, int n) {
  ws.scratch.clear();
  for (int i = 0; i < n; ++i) {
    ws.scratch.push_back(i);  // growth of caller-owned scratch: allowed
    out.push_back(i * 2);     // growth through a reference parameter
  }
  build_table(n);  // edge stops at MLDCS_ALLOC_OK
  // mldcs-analyze:allow(hot-no-alloc): one-shot setup, measured elsewhere
  std::vector<int> justified(static_cast<unsigned>(n));
  return static_cast<int>(ws.scratch.size() + justified.size());
}

}  // namespace fixture
