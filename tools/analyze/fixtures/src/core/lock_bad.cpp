// Seeded lock-discipline violations under an MLDCS_NO_LOCK root.
#include <chrono>
#include <mutex>
#include <thread>

#define MLDCS_NO_LOCK

namespace fixture {

std::mutex g_mu;

void helper_that_locks() {
  const std::lock_guard<std::mutex> lock(g_mu);  // transitive guard
}

MLDCS_NO_LOCK int lockfree_root(int n) {
  helper_that_locks();  // edge into the locking helper
  g_mu.lock();          // direct lock call
  g_mu.unlock();
  std::this_thread::sleep_for(std::chrono::milliseconds(1));  // blocking
  return n;
}

}  // namespace fixture
