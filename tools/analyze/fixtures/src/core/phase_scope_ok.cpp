// Clean fixture for the lock-discipline PhaseScope carve-out.  The real
// obs::PhaseScope (obs/profiler.hpp) lives in a translation unit full of
// registry mutexes, but the scope object itself is two relaxed
// thread-local stores — LOCK_FREE_CALLEES tells the walk not to descend
// into it, so an MLDCS_NO_LOCK body may tag itself.  Must stay silent.
#include <cstdint>
#include <mutex>

#define MLDCS_NO_LOCK

namespace fixture {

std::mutex g_reg_mu;
thread_local std::uint32_t t_phase;

class PhaseScope {
 public:
  explicit PhaseScope(std::uint32_t p) : prev_(t_phase) {
    // A lock sink the walk would flag if it descended into the callee.
    const std::lock_guard<std::mutex> lock(g_reg_mu);
    t_phase = p;
  }
  ~PhaseScope() { t_phase = prev_; }

 private:
  std::uint32_t prev_;
};

MLDCS_NO_LOCK std::uint32_t tagged_step(std::uint32_t p) {
  const PhaseScope scope(p);  // named-variable call site
  PhaseScope(p + 1);  // temporary call site (bare `p` would declare a var)
  return t_phase;
}

}  // namespace fixture
