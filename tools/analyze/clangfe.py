"""Optional libclang frontend for mldcs-analyze.

Where python3-clang + libclang are installed, this module *refines* the
token model's call graph and sink lists with AST-accurate data for the
reachability rules (hot-no-alloc, lock-discipline): real overload
resolution for call edges, constructor calls (invisible to the token
frontend), and exact [[clang::annotate]] attributes.

The preprocessor-aware rules (telemetry-stub-parity needs BOTH branches of
`#if MLDCS_ENABLE_TELEMETRY`; tolerance-audit and event-vocabulary read
suppression comments and Python sources) always run on the token model —
a compiler frontend fundamentally sees one configuration at a time.

This file must import cleanly only when asked to: mldcs_analyze.py catches
ClangUnavailable and degrades to the token frontend, which is the
reference implementation CI gates on.
"""

from __future__ import annotations

import json
import os

from model import Call, Sink

ANNOT_MAP = {
    "mldcs::hot_path": "MLDCS_HOT_PATH",
    "mldcs::no_lock": "MLDCS_NO_LOCK",
    "mldcs::alloc_ok": "MLDCS_ALLOC_OK",
}

OWNING_RECORDS = (
    "std::vector", "std::basic_string", "std::deque", "std::list",
    "std::map", "std::set", "std::unordered_map", "std::unordered_set",
    "std::function",
)
LOCK_RECORDS = (
    "std::mutex", "std::shared_mutex", "std::recursive_mutex",
    "std::lock_guard", "std::unique_lock", "std::scoped_lock",
    "std::shared_lock", "std::condition_variable",
)


class ClangUnavailable(RuntimeError):
    pass


def _load_cindex():
    try:
        from clang import cindex
    except ImportError as e:
        raise ClangUnavailable(f"python clang bindings not importable: {e}")
    try:
        cindex.Index.create()
    except Exception as e:  # libclang.so missing or ABI-mismatched
        raise ClangUnavailable(f"libclang not loadable: {e}")
    return cindex


def refine(model, compile_commands: str | None) -> None:
    """Re-derive calls/sinks/annotations of every function the token model
    already discovered, from the AST of each TU in compile_commands."""
    cindex = _load_cindex()
    if not compile_commands or not os.path.isfile(compile_commands):
        raise ClangUnavailable("no compile_commands.json available")
    with open(compile_commands, encoding="utf-8") as f:
        entries = json.load(f)
    index = cindex.Index.create()
    by_loc = {}
    for fn in model.functions:
        by_loc[(os.path.abspath(fn.file), fn.line)] = fn

    K = cindex.CursorKind
    for entry in entries:
        fp = os.path.normpath(os.path.join(entry.get("directory", ""),
                                           entry.get("file", "")))
        if not os.path.isfile(fp):
            continue
        args = [a for a in entry.get("command", "").split()[1:]
                if not a.endswith((".cpp", ".o")) and a not in ("-c", "-o")]
        try:
            tu = index.parse(fp, args=args)
        except cindex.TranslationUnitLoadError:
            continue

        def visit(cursor, current):
            kind = cursor.kind
            if kind in (K.FUNCTION_DECL, K.CXX_METHOD, K.CONSTRUCTOR,
                        K.FUNCTION_TEMPLATE) and cursor.is_definition():
                loc = cursor.location
                fn = by_loc.get((os.path.abspath(str(loc.file)), loc.line)) \
                    if loc.file else None
                if fn is not None:
                    fn.calls = []
                    fn.sinks = []
                    fn.annotations = set()
                    for ch in cursor.get_children():
                        if ch.kind == K.ANNOTATE_ATTR and \
                                ch.spelling in ANNOT_MAP:
                            fn.annotations.add(ANNOT_MAP[ch.spelling])
                    current = fn
            elif current is not None:
                line = cursor.location.line
                if kind == K.CALL_EXPR and cursor.spelling:
                    current.calls.append(Call(cursor.spelling, line, False))
                elif kind == K.CXX_NEW_EXPR:
                    current.sinks.append(
                        Sink("new", "new-expression", line))
                elif kind == K.VAR_DECL:
                    t = cursor.type.get_canonical().spelling
                    if t.startswith(OWNING_RECORDS):
                        current.sinks.append(Sink(
                            "local-container",
                            f"local {t.split('<')[0]} "
                            f"'{cursor.spelling}'", line))
                    elif t.startswith(LOCK_RECORDS):
                        current.sinks.append(Sink(
                            "lock-type", t.split("<")[0], line))
            for ch in cursor.get_children():
                visit(ch, current)

        visit(tu.cursor, None)
    model.finish()
