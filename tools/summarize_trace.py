#!/usr/bin/env python3
"""Summarize an mldcs chrome-trace file as a per-phase time table.

Usage: tools/summarize_trace.py [TRACE.json] [--snapshot SNAPSHOT.json]
                                [--blackbox REPORT.jsonl]
                                [--profile PROFILE[.folded|.json]]

TRACE.json is the trace-event file written by `perf_suite --trace` or
`mobility_maintenance --trace` (obs::write_trace_json): a JSON object with
a "traceEvents" array of complete ("ph": "X") spans, timestamps and
durations in microseconds.  The summary groups events by span name and
prints count, total wall time, mean duration, and share of the summed
span time — the quick per-phase readout without opening chrome://tracing.

--snapshot additionally validates and summarizes an mldcs-telemetry-v1
registry snapshot (obs::write_snapshot_json): counter/gauge values and
histogram count/mean/max per metric.

--blackbox validates and summarizes an mldcs-blackbox-v1 flight-recorder
report (the obs::blackbox dumper's output, from --blackbox PATH on the
example/bench binaries or a crash): dump reason, heartbeat step range,
the hottest counters by last-interval delta, and the event-tail span.
A report without its end trailer is summarized with a PARTIAL warning —
the dump was interrupted mid-write — rather than rejected.

--profile validates and summarizes an mldcs-profile-v1 sampling profile
(from --profile PATH on the binaries, or curl of /profile; both the
folded collapsed-stack text and the ?format=json document are accepted):
the phase breakdown table (count and share per phase) and the top-K
hottest folded stacks.  The trace argument is optional when --profile
or --blackbox is given.

Exit status: 0 on success — including an empty trace (telemetry compiled
out or tracing never started) and an empty or truncated trace *file*
(a run that died mid-write; reported as a named warning, since a crashed
run must not also crash its post-mortem tooling).  2 on a missing file
or a schema violation in well-formed JSON.  Doubles as the CI schema
check for both file formats.
"""

import argparse
import os
import sys

import obslib


def fail(msg):
    print(f"summarize_trace: {msg}", file=sys.stderr)
    sys.exit(2)


def load_trace_spans(path):
    """Spans from a trace file, or None (with a named warning) when the
    file is empty or truncated mid-write."""
    if not os.path.exists(path):
        fail(f"cannot read {path}: no such file")
    if os.path.getsize(path) == 0:
        print(f"summarize_trace: WARNING: {path} is empty "
              "(run died before the trace was written?); nothing to do")
        return None
    try:
        doc = obslib.load_json(path)
    except obslib.SchemaError as e:
        # The file exists and has bytes but is not one JSON document:
        # a truncated write, not a schema drift.
        print(f"summarize_trace: WARNING: {path} is not valid JSON "
              f"(truncated write?): {e}")
        return None
    try:
        return obslib.check_trace(doc, path)
    except obslib.SchemaError as e:
        fail(str(e))


def print_trace_summary(spans):
    if not spans:
        print("trace: no spans recorded (telemetry compiled out, or "
              "tracing was never started)")
        return
    by_name = {}
    for e in spans:
        agg = by_name.setdefault(e["name"], [0, 0.0])
        agg[0] += 1
        agg[1] += e["dur"]
    total_us = sum(t for _, t in by_name.values())
    threads = len({e["tid"] for e in spans})
    print(f"trace: {len(spans)} spans, {len(by_name)} phases, "
          f"{threads} thread(s)")
    header = f"{'phase':<32} {'count':>8} {'total ms':>12} " \
             f"{'mean us':>12} {'share':>7}"
    print(header)
    print("-" * len(header))
    for name, (count, us) in sorted(by_name.items(),
                                    key=lambda kv: -kv[1][1]):
        share = 100.0 * us / total_us if total_us > 0 else 0.0
        print(f"{name:<32} {count:>8} {us / 1e3:>12.3f} "
              f"{us / count:>12.2f} {share:>6.1f}%")
    # Share is of summed span time; nested spans double-count, so the
    # column can legitimately exceed 100% in aggregate.


def print_snapshot_summary(doc):
    enabled = doc.get("enabled", True)
    n = (len(doc["counters"]) + len(doc["gauges"])
         + len(doc["histograms"]))
    print(f"\nsnapshot: {n} metrics "
          f"(telemetry {'enabled' if enabled else 'compiled out'})")
    for name, v in sorted(doc["counters"].items()):
        print(f"  counter   {name:<36} {v}")
    for name, v in sorted(doc["gauges"].items()):
        print(f"  gauge     {name:<36} {v}")
    for name, h in sorted(doc["histograms"].items()):
        print(f"  histogram {name:<36} count={h['count']} "
              f"mean={h['mean']:.1f} max={h['max']}")


def print_blackbox_summary(header, frames, events):
    if header is None:
        print("\nblackbox: empty report (armed but never dumped?)")
        return
    print(f"\nblackbox: reason={header['reason']!r} pid={header['pid']} "
          f"{len(frames)} heartbeat frame(s), {len(events)} tail event(s)")
    if not frames:
        print("  no heartbeat frames (dumped before the first heartbeat)")
        return
    first, last = frames[0], frames[-1]
    print(f"  steps {first['step']}..{last['step']} "
          f"(seq {first['seq']}..{last['seq']})")
    deltas = sorted(((name, val[1], val[0])
                     for name, val in last["counters"].items()),
                    key=lambda kv: -kv[1])
    for name, delta, absolute in deltas[:8]:
        print(f"  counter   {name:<36} {absolute} (+{delta} last interval)")
    for row in last.get("shards", []):
        print(f"  shard {row['shard']:>3}  owned={row['owned']} "
              f"halo={row['halo']} incoming={row['incoming']} "
              f"dirty={row['dirty']} step_ns={row['step_ns']} "
              f"wait_ns={row['barrier_wait_ns']}")
    if events:
        print(f"  event tail ids {events[0]['id']}..{events[-1]['id']}")


def print_profile_summary(prof, top_k=12):
    meta = []
    if prof["hz"] is not None:
        meta.append(f"{prof['hz']} Hz")
    if prof["duration_s"] is not None:
        meta.append(f"{prof['duration_s']:.2f} s")
    if prof["dropped"] is not None:
        meta.append(f"{prof['dropped']} dropped")
    suffix = f" ({', '.join(meta)})" if meta else ""
    print(f"\nprofile [{prof['format']}]: {prof['total_samples']} "
          f"samples{suffix}")
    if prof["total_samples"] == 0:
        print("  no samples (telemetry compiled out, or the profiler was "
              "never armed / the window saw no CPU)")
        return
    total = prof["total_samples"]
    header = f"  {'phase':<20} {'samples':>10} {'share':>7}"
    print(header)
    print("  " + "-" * (len(header) - 2))
    for name, count in sorted(prof["phases"].items(), key=lambda kv: -kv[1]):
        print(f"  {name:<20} {count:>10} {100.0 * count / total:>6.1f}%")
    print(f"  top {min(top_k, len(prof['stacks']))} stacks:")
    for stack, count in prof["stacks"][:top_k]:
        label = stack if len(stack) <= 100 else stack[:97] + "..."
        print(f"  {count:>8}  {label}")


def main():
    parser = argparse.ArgumentParser(
        description="Summarize an mldcs trace (and optional telemetry "
                    "snapshot / blackbox report / sampling profile).")
    parser.add_argument("trace", nargs="?",
                        help="trace-event JSON from --trace (optional when "
                             "--profile or --blackbox is given)")
    parser.add_argument("--snapshot",
                        help="mldcs-telemetry-v1 JSON from --telemetry")
    parser.add_argument("--blackbox",
                        help="mldcs-blackbox-v1 JSONL report to validate "
                             "and summarize")
    parser.add_argument("--profile",
                        help="mldcs-profile-v1 sampling profile (folded "
                             "text or JSON) to validate and summarize")
    args = parser.parse_args()
    if args.trace is None and not (args.profile or args.blackbox):
        parser.error("give a trace file, --profile, or --blackbox")

    if args.trace is not None:
        spans = load_trace_spans(args.trace)
        if spans is not None:
            print_trace_summary(spans)

    if args.snapshot:
        try:
            doc = obslib.check_snapshot(obslib.load_json(args.snapshot),
                                        args.snapshot)
        except obslib.SchemaError as e:
            fail(str(e))
        print_snapshot_summary(doc)

    if args.blackbox:
        try:
            header, frames, events = obslib.load_blackbox(args.blackbox)
        except obslib.SchemaError as e:
            fail(str(e))
        print_blackbox_summary(header, frames, events)
        if header is not None and not any(
                ln.strip().startswith('{"kind":"end"')
                for ln in open(args.blackbox, encoding="utf-8")):
            print("  WARNING: PARTIAL report (no end trailer; the dump "
                  "was interrupted mid-write)")
        embedded = obslib.scan_blackbox_profile(args.blackbox)
        if embedded is not None:
            print(f"  profile appendix: {embedded['total_samples']} samples "
                  f"at {embedded['hz']} Hz across "
                  f"{len(embedded['phases'])} phase(s)")

    if args.profile:
        try:
            prof = obslib.load_profile(args.profile)
        except obslib.SchemaError as e:
            fail(str(e))
        print_profile_summary(prof)
    return 0


if __name__ == "__main__":
    sys.exit(main())
