#!/usr/bin/env python3
"""Summarize an mldcs chrome-trace file as a per-phase time table.

Usage: tools/summarize_trace.py TRACE.json [--snapshot SNAPSHOT.json]

TRACE.json is the trace-event file written by `perf_suite --trace` or
`mobility_maintenance --trace` (obs::write_trace_json): a JSON object with
a "traceEvents" array of complete ("ph": "X") spans, timestamps and
durations in microseconds.  The summary groups events by span name and
prints count, total wall time, mean duration, and share of the summed
span time — the quick per-phase readout without opening chrome://tracing.

--snapshot additionally validates and summarizes an mldcs-telemetry-v1
registry snapshot (obs::write_snapshot_json): counter/gauge values and
histogram count/mean/max per metric.

Exit status: 0 on success (including an empty trace: telemetry compiled
out or tracing never started), 2 on unreadable input or schema errors.
Doubles as the CI schema check for both file formats.
"""

import argparse
import json
import sys


def fail(msg):
    print(f"summarize_trace: {msg}", file=sys.stderr)
    sys.exit(2)


def load_json(path):
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        fail(f"cannot read {path}: {e}")


def check_trace(doc, path):
    """Validate the trace-event schema; return the complete-span events."""
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        fail(f"{path}: missing 'traceEvents' array")
    spans = []
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            fail(f"{path}: traceEvents[{i}] is not an object")
        if e.get("ph") != "X":
            continue  # tolerate non-span phases from other producers
        for key, typ in (("name", str), ("ts", (int, float)),
                         ("dur", (int, float)), ("tid", (int, float))):
            if not isinstance(e.get(key), typ):
                fail(f"{path}: traceEvents[{i}] has no valid '{key}'")
        if e["dur"] < 0:
            fail(f"{path}: traceEvents[{i}] has negative duration")
        spans.append(e)
    return spans


def print_trace_summary(spans):
    if not spans:
        print("trace: no spans recorded (telemetry compiled out, or "
              "tracing was never started)")
        return
    by_name = {}
    for e in spans:
        agg = by_name.setdefault(e["name"], [0, 0.0])
        agg[0] += 1
        agg[1] += e["dur"]
    total_us = sum(t for _, t in by_name.values())
    threads = len({e["tid"] for e in spans})
    print(f"trace: {len(spans)} spans, {len(by_name)} phases, "
          f"{threads} thread(s)")
    header = f"{'phase':<32} {'count':>8} {'total ms':>12} " \
             f"{'mean us':>12} {'share':>7}"
    print(header)
    print("-" * len(header))
    for name, (count, us) in sorted(by_name.items(),
                                    key=lambda kv: -kv[1][1]):
        share = 100.0 * us / total_us if total_us > 0 else 0.0
        print(f"{name:<32} {count:>8} {us / 1e3:>12.3f} "
              f"{us / count:>12.2f} {share:>6.1f}%")
    # Share is of summed span time; nested spans double-count, so the
    # column can legitimately exceed 100% in aggregate.


def check_snapshot(doc, path):
    if not isinstance(doc, dict):
        fail(f"{path}: top level is not a JSON object")
    if doc.get("schema") != "mldcs-telemetry-v1":
        fail(f"{path}: unexpected schema {doc.get('schema')!r} "
             "(expected mldcs-telemetry-v1)")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            fail(f"{path}: missing '{section}' object")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict):
            fail(f"{path}: histogram {name!r} is not an object")
        for key in ("count", "sum", "min", "max", "mean", "buckets"):
            if key not in h:
                fail(f"{path}: histogram {name!r} is missing '{key}'")
        if not isinstance(h["buckets"], list):
            fail(f"{path}: histogram {name!r} 'buckets' is not a list")


def print_snapshot_summary(doc):
    enabled = doc.get("enabled", True)
    n = (len(doc["counters"]) + len(doc["gauges"])
         + len(doc["histograms"]))
    print(f"\nsnapshot: {n} metrics "
          f"(telemetry {'enabled' if enabled else 'compiled out'})")
    for name, v in sorted(doc["counters"].items()):
        print(f"  counter   {name:<36} {v}")
    for name, v in sorted(doc["gauges"].items()):
        print(f"  gauge     {name:<36} {v}")
    for name, h in sorted(doc["histograms"].items()):
        print(f"  histogram {name:<36} count={h['count']} "
              f"mean={h['mean']:.1f} max={h['max']}")


def main():
    parser = argparse.ArgumentParser(
        description="Summarize an mldcs trace (and optional telemetry "
                    "snapshot).")
    parser.add_argument("trace", help="trace-event JSON from --trace")
    parser.add_argument("--snapshot",
                        help="mldcs-telemetry-v1 JSON from --telemetry")
    args = parser.parse_args()

    spans = check_trace(load_json(args.trace), args.trace)
    print_trace_summary(spans)

    if args.snapshot:
        doc = load_json(args.snapshot)
        check_snapshot(doc, args.snapshot)
        print_snapshot_summary(doc)
    return 0


if __name__ == "__main__":
    sys.exit(main())
