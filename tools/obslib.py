"""Shared loading/validation helpers for the mldcs observability tools.

The C++ side emits three JSON document families (docs/OBSERVABILITY.md):

  * chrome-trace files from obs::write_trace_json ("traceEvents" spans),
  * mldcs-telemetry-v1 registry snapshots from obs::write_snapshot_json,
  * mldcs-events-v1 flight-recorder JSONL from obs::write_events_jsonl
    (one header line, then one event object per line),
  * mldcs-blackbox-v1 crash/heartbeat reports from the obs::blackbox
    dumper (header, heartbeat frames, event-tail lines, end line),
  * mldcs-shards-v1 per-shard load tables from the introspection
    server's /shards endpoint,
  * mldcs-profile-v1 sampling profiles from obs::profiler (folded
    collapsed-stack text from --profile / /profile, one JSON document
    from /profile?format=json, and {"kind":"profile"} lines embedded in
    blackbox reports),

plus the mldcs-perf-v1 benchmark documents from perf_suite.  Every tool
that reads one of these (summarize_trace.py, check_bench.py,
mldcs_report.py, mldcs_top.py) validates through this module so a schema
drift fails identically everywhere instead of several slightly different
ways.

All checkers raise SchemaError with a path-prefixed message; tools decide
whether that is fatal (CI gates) or a named warning (best-effort reports).
"""

import json

EVENT_SCHEMA = "mldcs-events-v1"
TELEMETRY_SCHEMA = "mldcs-telemetry-v1"
PERF_SCHEMA = "mldcs-perf-v1"
BLACKBOX_SCHEMA = "mldcs-blackbox-v1"
SHARDS_SCHEMA = "mldcs-shards-v1"
PROFILE_SCHEMA = "mldcs-profile-v1"

#: Event-type tokens emitted by obs::event_type_name (one per EventType).
EVENT_TYPES = frozenset({
    "broadcast", "tx", "rx", "dup_rx", "designate", "suppress",
    "step", "cache_update", "watchdog_check", "watchdog_mismatch",
    "shard_exchange", "heartbeat", "crash_dump",
})


class SchemaError(Exception):
    """A document failed to load or does not match its declared schema."""


def load_json(path):
    """Parse one JSON document; raise SchemaError on any failure."""
    try:
        with open(path, encoding="utf-8") as f:
            return json.load(f)
    except (OSError, ValueError) as e:
        raise SchemaError(f"cannot read {path}: {e}") from e


def check_trace(doc, path):
    """Validate a chrome-trace document; return its complete-span events."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not a JSON object")
    events = doc.get("traceEvents")
    if not isinstance(events, list):
        raise SchemaError(f"{path}: missing 'traceEvents' array")
    spans = []
    for i, e in enumerate(events):
        if not isinstance(e, dict):
            raise SchemaError(f"{path}: traceEvents[{i}] is not an object")
        if e.get("ph") != "X":
            continue  # tolerate non-span phases from other producers
        for key, typ in (("name", str), ("ts", (int, float)),
                         ("dur", (int, float)), ("tid", (int, float))):
            if not isinstance(e.get(key), typ):
                raise SchemaError(
                    f"{path}: traceEvents[{i}] has no valid '{key}'")
        if e["dur"] < 0:
            raise SchemaError(
                f"{path}: traceEvents[{i}] has negative duration")
        spans.append(e)
    return spans


def check_snapshot(doc, path):
    """Validate an mldcs-telemetry-v1 snapshot; return it."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not a JSON object")
    if doc.get("schema") != TELEMETRY_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema {doc.get('schema')!r} "
                          f"(expected {TELEMETRY_SCHEMA})")
    for section in ("counters", "gauges", "histograms"):
        if not isinstance(doc.get(section), dict):
            raise SchemaError(f"{path}: missing '{section}' object")
    for name, h in doc["histograms"].items():
        if not isinstance(h, dict):
            raise SchemaError(f"{path}: histogram {name!r} is not an object")
        for key in ("count", "sum", "min", "max", "mean", "buckets"):
            if key not in h:
                raise SchemaError(
                    f"{path}: histogram {name!r} is missing '{key}'")
        if not isinstance(h["buckets"], list):
            raise SchemaError(
                f"{path}: histogram {name!r} 'buckets' is not a list")
    return doc


def load_events(path):
    """Load and validate an mldcs-events-v1 JSONL file.

    Returns (header, events): the header dict and the list of event dicts
    in file order.  Raises SchemaError on unreadable input, a bad header,
    an unknown event type, non-increasing ids, a parent that does not
    precede its child, or a count that disagrees with the line count.
    """
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in (raw.strip() for raw in f) if ln]
    except OSError as e:
        raise SchemaError(f"cannot read {path}: {e}") from e
    if not lines:
        raise SchemaError(f"{path}: empty file (expected a header line)")

    def parse(i, line):
        try:
            doc = json.loads(line)
        except ValueError as e:
            raise SchemaError(f"{path}:{i + 1}: bad JSON: {e}") from e
        if not isinstance(doc, dict):
            raise SchemaError(f"{path}:{i + 1}: line is not a JSON object")
        return doc

    header = parse(0, lines[0])
    if header.get("schema") != EVENT_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema "
                          f"{header.get('schema')!r} "
                          f"(expected {EVENT_SCHEMA})")
    for key in ("enabled", "count", "dropped"):
        if key not in header:
            raise SchemaError(f"{path}: header is missing '{key}'")

    events = []
    prev_id = -1
    for i, line in enumerate(lines[1:], start=1):
        e = parse(i, line)
        for key in ("id", "t", "a", "v"):
            if key not in e:
                raise SchemaError(f"{path}:{i + 1}: event missing '{key}'")
        if e["t"] not in EVENT_TYPES:
            raise SchemaError(
                f"{path}:{i + 1}: unknown event type {e['t']!r}")
        if not isinstance(e["id"], int) or e["id"] <= prev_id:
            raise SchemaError(f"{path}:{i + 1}: ids must be strictly "
                              f"increasing ({prev_id} then {e['id']})")
        if "parent" in e and e["parent"] >= e["id"]:
            raise SchemaError(f"{path}:{i + 1}: parent {e['parent']} does "
                              f"not precede event {e['id']}")
        prev_id = e["id"]
        events.append(e)

    if header["count"] != len(events):
        raise SchemaError(f"{path}: header count {header['count']} != "
                          f"{len(events)} event lines (truncated?)")
    return header, events


def load_blackbox(path):
    """Load and validate an mldcs-blackbox-v1 crash/heartbeat report.

    Returns (header, frames, events): the header dict, the heartbeat
    frame dicts, and the event-tail dicts, each in file order.  Raises
    SchemaError on unreadable input, a bad header, an unknown line kind,
    non-increasing heartbeat sequence numbers or event ids, a malformed
    counter delta, or an end line whose counts disagree with the body.
    An optional {"kind":"profile"} line (present when the sampling
    profiler was armed at dump time) is validated in place against
    mldcs-profile-v1 and otherwise ignored here; use scan_blackbox_profile
    to extract it.

    The end line is optional: a dump interrupted mid-write (the process
    died inside the crash handler) still yields whatever frames landed,
    and the missing trailer is the caller's signal that the report is
    partial.  Returns header None for an empty file for the same reason.
    """
    try:
        with open(path, encoding="utf-8") as f:
            lines = [ln for ln in (raw.strip() for raw in f) if ln]
    except OSError as e:
        raise SchemaError(f"cannot read {path}: {e}") from e
    if not lines:
        return None, [], []

    def parse(i, line):
        try:
            doc = json.loads(line)
        except ValueError as e:
            raise SchemaError(f"{path}:{i + 1}: bad JSON: {e}") from e
        if not isinstance(doc, dict):
            raise SchemaError(f"{path}:{i + 1}: line is not a JSON object")
        return doc

    header = parse(0, lines[0])
    if header.get("kind") != "header":
        raise SchemaError(f"{path}: first line kind is "
                          f"{header.get('kind')!r} (expected 'header')")
    if header.get("schema") != BLACKBOX_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema "
                          f"{header.get('schema')!r} "
                          f"(expected {BLACKBOX_SCHEMA})")
    for key in ("pid", "frames", "event_tail", "reason"):
        if key not in header:
            raise SchemaError(f"{path}: header is missing '{key}'")

    frames = []
    events = []
    end = None
    prev_seq = -1
    prev_id = -1
    for i, line in enumerate(lines[1:], start=1):
        doc = parse(i, line)
        kind = doc.get("kind")
        if end is not None:
            raise SchemaError(f"{path}:{i + 1}: line after the end trailer")
        if kind == "heartbeat":
            for key in ("seq", "step", "counters", "gauges", "hists",
                        "shards", "events"):
                if key not in doc:
                    raise SchemaError(
                        f"{path}:{i + 1}: heartbeat missing '{key}'")
            if not isinstance(doc["seq"], int) or doc["seq"] <= prev_seq:
                raise SchemaError(
                    f"{path}:{i + 1}: heartbeat seq must be strictly "
                    f"increasing ({prev_seq} then {doc['seq']})")
            prev_seq = doc["seq"]
            for name, val in doc["counters"].items():
                if (not isinstance(val, list) or len(val) != 2
                        or not all(isinstance(x, int) for x in val)):
                    raise SchemaError(
                        f"{path}:{i + 1}: counter {name!r} is not an "
                        "[absolute, delta] pair")
            frames.append(doc)
        elif kind == "event":
            for key in ("id", "t", "a", "v"):
                if key not in doc:
                    raise SchemaError(
                        f"{path}:{i + 1}: event missing '{key}'")
            if doc["t"] not in EVENT_TYPES:
                raise SchemaError(
                    f"{path}:{i + 1}: unknown event type {doc['t']!r}")
            if not isinstance(doc["id"], int) or doc["id"] <= prev_id:
                raise SchemaError(
                    f"{path}:{i + 1}: event ids must be strictly "
                    f"increasing ({prev_id} then {doc['id']})")
            prev_id = doc["id"]
            events.append(doc)
        elif kind == "profile":
            check_profile_doc(doc, f"{path}:{i + 1}")
        elif kind == "end":
            end = doc
        else:
            raise SchemaError(f"{path}:{i + 1}: unknown line kind {kind!r}")

    if end is not None:
        if end.get("frames") != len(frames):
            raise SchemaError(f"{path}: end line claims "
                              f"{end.get('frames')} frames, found "
                              f"{len(frames)}")
        if end.get("events") != len(events):
            raise SchemaError(f"{path}: end line claims "
                              f"{end.get('events')} events, found "
                              f"{len(events)}")
    return header, frames, events


#: Phase tokens emitted by obs::phase_name (one per obs::Phase).
PHASE_NAMES = frozenset({
    "none", "step_ownership", "shard_step", "halo_exchange",
    "cache_recompute", "step_commit", "simd_kernel", "pool_idle",
})


def check_profile_doc(doc, path):
    """Validate one mldcs-profile-v1 JSON document; return it.

    Accepts both the standalone form (/profile?format=json: has
    "duration_s" and a complete "folded" stack map) and the bounded
    {"kind":"profile"} line embedded in blackbox reports (has a
    truncated "top" stack array instead).  In both, phase counts must
    sum to total_samples — every sample carries exactly one phase.
    """
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: profile is not a JSON object")
    if doc.get("schema") != PROFILE_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema {doc.get('schema')!r} "
                          f"(expected {PROFILE_SCHEMA})")
    for key in ("hz", "total_samples", "dropped"):
        if not isinstance(doc.get(key), int) or doc[key] < 0:
            raise SchemaError(
                f"{path}: profile '{key}' is not a non-negative integer")
    phases = doc.get("phases")
    if not isinstance(phases, dict):
        raise SchemaError(f"{path}: profile is missing the 'phases' object")
    for name, count in phases.items():
        if name not in PHASE_NAMES:
            raise SchemaError(f"{path}: unknown phase {name!r}")
        if not isinstance(count, int) or count < 0:
            raise SchemaError(f"{path}: phase {name!r} count is not a "
                              "non-negative integer")
    if sum(phases.values()) != doc["total_samples"]:
        raise SchemaError(
            f"{path}: phase counts sum to {sum(phases.values())}, "
            f"total_samples is {doc['total_samples']}")
    folded = doc.get("folded")
    top = doc.get("top")
    if isinstance(folded, dict):
        for stack, count in folded.items():
            if not isinstance(count, int) or count < 0:
                raise SchemaError(f"{path}: folded stack {stack!r} count "
                                  "is not a non-negative integer")
        if sum(folded.values()) != doc["total_samples"]:
            raise SchemaError(
                f"{path}: folded counts sum to {sum(folded.values())}, "
                f"total_samples is {doc['total_samples']}")
    elif isinstance(top, list):
        seen = 0
        for i, entry in enumerate(top):
            if (not isinstance(entry, list) or len(entry) != 2
                    or not isinstance(entry[0], str)
                    or not isinstance(entry[1], int) or entry[1] < 0):
                raise SchemaError(
                    f"{path}: top[{i}] is not a [stack, count] pair")
            seen += entry[1]
        if seen > doc["total_samples"]:  # truncated list: <= is the contract
            raise SchemaError(
                f"{path}: top counts sum to {seen}, exceeding "
                f"total_samples {doc['total_samples']}")
    else:
        raise SchemaError(
            f"{path}: profile has neither a 'folded' map nor a 'top' array")
    return doc


def _parse_folded_text(text, path):
    """Parse collapsed-stack text ("stack count" lines) into stack rows."""
    stacks = []
    for i, line in enumerate(text.splitlines()):
        line = line.strip()
        if not line:
            continue
        stack, sep, count = line.rpartition(" ")
        if not sep or not count.isdigit():
            raise SchemaError(
                f"{path}:{i + 1}: not a 'stack count' folded line")
        if not stack:
            raise SchemaError(f"{path}:{i + 1}: empty stack")
        stacks.append((stack, int(count)))
    return stacks


def load_profile(path):
    """Load a profile in either serialization; return a normalized dict.

    Sniffs the format: a document starting with '{' is parsed as the
    mldcs-profile-v1 JSON form (check_profile_doc); anything else as
    collapsed-stack text, where each line is "phase;frame;...;leaf N"
    and the phase breakdown is recovered from the root frame.  An empty
    file is a valid empty profile (telemetry-off builds serve one).

    Returns {"format", "hz", "total_samples", "dropped", "duration_s",
    "phases", "stacks"} with stacks as (stack, count) pairs sorted by
    descending count; hz/dropped/duration_s are None in folded form
    (the text carries no metadata).
    """
    try:
        with open(path, encoding="utf-8") as f:
            text = f.read()
    except OSError as e:
        raise SchemaError(f"cannot read {path}: {e}") from e
    if text.lstrip().startswith("{"):
        try:
            doc = json.loads(text)
        except ValueError as e:
            raise SchemaError(f"{path}: bad JSON: {e}") from e
        check_profile_doc(doc, path)
        if isinstance(doc.get("folded"), dict):
            stacks = list(doc["folded"].items())
        else:
            stacks = [(e[0], e[1]) for e in doc.get("top", [])]
        stacks.sort(key=lambda kv: (-kv[1], kv[0]))
        return {"format": "json", "hz": doc["hz"],
                "total_samples": doc["total_samples"],
                "dropped": doc["dropped"],
                "duration_s": doc.get("duration_s"),
                "phases": dict(doc["phases"]), "stacks": stacks}
    stacks = _parse_folded_text(text, path)
    phases = {}
    for stack, count in stacks:
        root = stack.split(";", 1)[0]
        if root not in PHASE_NAMES:
            raise SchemaError(
                f"{path}: folded stack root {root!r} is not a phase "
                "(expected one of obs::phase_name's tokens)")
        phases[root] = phases.get(root, 0) + count
    stacks.sort(key=lambda kv: (-kv[1], kv[0]))
    return {"format": "folded", "hz": None,
            "total_samples": sum(c for _, c in stacks), "dropped": None,
            "duration_s": None, "phases": phases, "stacks": stacks}


def scan_blackbox_profile(path):
    """Return the {"kind":"profile"} line of a blackbox report, or None."""
    try:
        with open(path, encoding="utf-8") as f:
            for line in f:
                line = line.strip()
                if not line:
                    continue
                try:
                    doc = json.loads(line)
                except ValueError:
                    continue
                if isinstance(doc, dict) and doc.get("kind") == "profile":
                    return check_profile_doc(doc, path)
    except OSError as e:
        raise SchemaError(f"cannot read {path}: {e}") from e
    return None


def check_shards(doc, path):
    """Validate an mldcs-shards-v1 load table; return its shard rows."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not a JSON object")
    if doc.get("schema") != SHARDS_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema {doc.get('schema')!r} "
                          f"(expected {SHARDS_SCHEMA})")
    shards = doc.get("shards")
    if not isinstance(shards, list):
        raise SchemaError(f"{path}: missing 'shards' array")
    if doc.get("count") != len(shards):
        raise SchemaError(f"{path}: count {doc.get('count')} != "
                          f"{len(shards)} shard rows")
    for i, s in enumerate(shards):
        if not isinstance(s, dict):
            raise SchemaError(f"{path}: shards[{i}] is not an object")
        for key in ("shard", "owned", "halo", "incoming", "dirty",
                    "step_ns", "barrier_wait_ns"):
            if not isinstance(s.get(key), int):
                raise SchemaError(
                    f"{path}: shards[{i}] has no integer '{key}'")
    return shards


def check_bench(doc, path):
    """Validate the mldcs-perf-v1 envelope; return the document."""
    if not isinstance(doc, dict):
        raise SchemaError(f"{path}: top level is not a JSON object")
    if doc.get("schema") != PERF_SCHEMA:
        raise SchemaError(f"{path}: unexpected schema {doc.get('schema')!r} "
                          f"(expected {PERF_SCHEMA})")
    return doc


def check_history_entry(entry, where):
    """Validate one BENCH_history.jsonl line; raise SchemaError otherwise.

    A history line is a flattened mldcs-perf-v1 summary (bench_summary
    output plus a 'source' tag): a JSON object whose leaves are numbers
    (the plottable series), strings, or null, with at least one numeric
    leaf — anything else cannot be delta-compared and would poison the
    longitudinal record.
    """
    if not isinstance(entry, dict):
        raise SchemaError(f"{where}: history entry is not a JSON object")

    has_number = False

    def walk(d, prefix):
        nonlocal has_number
        for key, val in d.items():
            name = f"{prefix}{key}"
            if isinstance(val, dict):
                walk(val, name + ".")
            elif isinstance(val, (int, float)) and not isinstance(val, bool):
                has_number = True
            elif not isinstance(val, (str, bool)) and val is not None:
                raise SchemaError(
                    f"{where}: history field {name!r} is neither a number, "
                    "a string, nor null")

    walk(entry, "")
    if not has_number:
        raise SchemaError(f"{where}: history entry has no numeric fields")
    return entry


def bench_summary(doc):
    """Reduce an mldcs-perf-v1 document to one flat per-section summary.

    One scalar headline per section — the number you would plot over time
    — so BENCH_history.jsonl entries stay one line each.  Absent sections
    are simply absent keys (sectioned runs summarize what they measured).
    """
    out = {"mode": doc.get("mode"), "threads": doc.get("threads")}

    prov = doc.get("provenance")
    if isinstance(prov, dict):
        strings = {k: v for k, v in prov.items() if isinstance(v, str)}
        if strings:
            out["provenance"] = strings

    simd = doc.get("single_relay_skyline_simd")
    if isinstance(simd, list) and simd:
        speedups = {e["n_disks"]: e["simd_vs_scalar_speedup"] for e in simd
                    if isinstance(e, dict) and "n_disks" in e
                    and "simd_vs_scalar_speedup" in e}
        if speedups:
            out["simd_vs_scalar_speedup"] = speedups

    srs = doc.get("single_relay_skyline")
    if isinstance(srs, list) and srs:
        ops = {e["n_disks"]: e["workspace"]["ops_per_s"] for e in srs
               if isinstance(e, dict) and isinstance(e.get("workspace"), dict)
               and "n_disks" in e and "ops_per_s" in e["workspace"]}
        if ops:
            out["single_relay_ops_per_s"] = ops
            out["single_relay_allocs_per_op"] = max(
                e["workspace"].get("allocs_per_op", 0) for e in srs
                if isinstance(e, dict) and isinstance(e.get("workspace"),
                                                      dict))

    batch = doc.get("batch_all_relays")
    if isinstance(batch, dict) and "batch_relays_per_s" in batch:
        out["batch_relays_per_s"] = batch["batch_relays_per_s"]

    gb = doc.get("graph_build")
    if isinstance(gb, list) and gb:
        per_node = [e["ns_per_node"] for e in gb
                    if isinstance(e, dict) and "ns_per_node" in e]
        if per_node:
            out["graph_build_ns_per_node"] = max(per_node)

    threads = doc.get("batch_all_relays_threads")
    if isinstance(threads, list) and threads:
        best = max((e for e in threads
                    if isinstance(e, dict) and "speedup_vs_1_thread" in e),
                   key=lambda e: e["speedup_vs_1_thread"], default=None)
        if best is not None:
            out["best_thread_speedup"] = best["speedup_vs_1_thread"]
            out["best_thread_count"] = best.get("threads")

    sharded = doc.get("sharded_mobility")
    if isinstance(sharded, list) and sharded:
        # One headline per deployment size: the entry at the top shard
        # count, whose speedup_vs_1_shard is what the scaling gate tracks.
        top = {}
        for e in sharded:
            if (not isinstance(e, dict) or "nodes" not in e
                    or "shards" not in e):
                continue
            cur = top.get(e["nodes"])
            if cur is None or e["shards"] > cur["shards"]:
                top[e["nodes"]] = e
        speedups = {n: e["speedup_vs_1_shard"] for n, e in top.items()
                    if "speedup_vs_1_shard" in e}
        if speedups:
            out["sharded_speedup_vs_1_shard"] = speedups
            out["sharded_top_shards"] = {n: e["shards"]
                                         for n, e in top.items()}
        relays = {n: e["relays_per_s"] for n, e in top.items()
                  if "relays_per_s" in e}
        if relays:
            out["sharded_relays_per_s"] = relays
        halos = {n: e["halo_fraction"] for n, e in top.items()
                 if "halo_fraction" in e}
        if halos:
            out["sharded_halo_fraction"] = halos

    mob = doc.get("mobility_steady_state")
    if isinstance(mob, list) and mob:
        speedups = {e["regime"]: e.get("speedup_vs_full_rebuild")
                    for e in mob if isinstance(e, dict) and "regime" in e}
        speedups = {k: v for k, v in speedups.items() if v is not None}
        if speedups:
            out["mobility_speedup_vs_full_rebuild"] = speedups

    return out
