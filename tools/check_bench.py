#!/usr/bin/env python3
"""Compare a fresh perf-suite run against a checked-in baseline.

Usage: tools/check_bench.py BASELINE.json FRESH.json

The comparison is deliberately coarse — CI runners are noisy, and a quick
run has a 10x smaller time budget than the checked-in full run — so only
two failure modes are flagged, both on the allocation-free workspace path
of the single_relay_skyline section (matched by n_disks):

  * throughput collapse: fresh ops_per_s below baseline/3
  * any allocation regression: allocs_per_op above the baseline (the
    workspace engine is allocation-free by design; even 1 alloc/op means
    the scratch-reuse contract broke)

Exit status: 0 clean, 1 regression, 2 usage/schema error.
"""

import json
import sys

MAX_SLOWDOWN = 3.0


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "mldcs-perf-v1":
        print(f"check_bench: {path}: unexpected schema {doc.get('schema')!r}",
              file=sys.stderr)
        sys.exit(2)
    return doc


def by_n_disks(doc, path):
    entries = doc.get("single_relay_skyline")
    if not isinstance(entries, list) or not entries:
        print(f"check_bench: {path}: missing single_relay_skyline section",
              file=sys.stderr)
        sys.exit(2)
    return {e["n_disks"]: e["workspace"] for e in entries}


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = by_n_disks(load(sys.argv[1]), sys.argv[1])
    fresh = by_n_disks(load(sys.argv[2]), sys.argv[2])

    failures = []
    for n, base in sorted(baseline.items()):
        cur = fresh.get(n)
        if cur is None:
            failures.append(f"n_disks={n}: missing from fresh run")
            continue
        ratio = base["ops_per_s"] / cur["ops_per_s"]
        status = "ok"
        if cur["ops_per_s"] < base["ops_per_s"] / MAX_SLOWDOWN:
            failures.append(
                f"n_disks={n}: throughput collapsed {ratio:.2f}x "
                f"({base['ops_per_s']:.0f} -> {cur['ops_per_s']:.0f} ops/s)")
            status = "FAIL"
        if cur["allocs_per_op"] > base["allocs_per_op"]:
            failures.append(
                f"n_disks={n}: workspace path now allocates "
                f"({base['allocs_per_op']} -> {cur['allocs_per_op']} "
                f"allocs/op)")
            status = "FAIL"
        print(f"  n_disks={n}: {cur['ops_per_s']:.0f} ops/s "
              f"(baseline/{ratio:.2f}), {cur['allocs_per_op']} allocs/op "
              f"[{status}]")

    if failures:
        print("check_bench: REGRESSION", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench: OK "
          f"(workspace path within {MAX_SLOWDOWN}x of baseline, "
          "no allocation regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
