#!/usr/bin/env python3
"""Compare a fresh perf-suite run against a checked-in baseline.

Usage: tools/check_bench.py BASELINE.json FRESH.json [--history FILE.jsonl]

The comparison is deliberately coarse — CI runners are noisy, and a quick
run has a 10x smaller time budget than the checked-in full run — so only
two failure modes are flagged, both on the allocation-free workspace path
of the single_relay_skyline section (matched by n_disks):

  * throughput collapse: fresh ops_per_s below baseline/3
  * any allocation regression: allocs_per_op above the baseline (the
    workspace engine is allocation-free by design; even 1 alloc/op means
    the scratch-reuse contract broke)

  * SIMD dispatch regression, from the single_relay_skyline_simd
    section of the fresh run alone: when the provenance says wide
    kernels are compiled in and the CPU supports them, dispatch must
    not land on the scalar fallback, and the measured simd-vs-scalar
    speedup must stay >= 1.0 (the wide path must never be slower than
    the pinned scalar reference it is bit-identical to).

  * sharded scaling regression, from the sharded_mobility section: per
    deployment size, speedup_vs_1_shard at the top shard count must not
    drop more than 20% below the last valid BENCH_history.jsonl entry
    (or the baseline's own summary when no history is given).  Hosts
    with fewer cores than the top shard count are skipped — there the
    curve measures oversubscription, not scaling (the provenance's
    hardware_concurrency field says which reading applies).

A missing or renamed section/field (e.g. a fresh run produced with
`perf_suite --section ...`, or an older baseline from before a schema
addition) is a named WARNING, not a failure: the comparison that cannot
be made is skipped and the exit status stays 0.  A section present in
the fresh run but absent from the baseline (a schema addition mid-
transition) is informational, not even a warning.  Only measured
regressions exit 1.

Both documents' `provenance` headers (compiler, build flags, detected
ISA, dispatch choice) are diffed and printed so any delta is
attributable; provenance changes never gate by themselves.

--history FILE.jsonl additionally appends the fresh run's per-section
summary (obslib.bench_summary) as one JSON line and prints deltas
against the previous entry — the longitudinal record CI keeps so a slow
drift (each step under the 3x gate) is still visible across runs.
Every line is validated (obslib.check_history_entry) before use:
unparseable or malformed lines — non-object entries, non-numeric leaf
values — are skipped with a named warning, deltas are taken against the
last *valid* entry, and a summary that fails validation is not appended.
The appended summary names the run's observability provenance
(`introspect`/`blackbox` keys) so instrumented runs are attributable in
the longitudinal record.

Exit status: 0 clean (possibly with warnings), 1 regression,
2 usage/unreadable-input error.
"""

import argparse
import json
import sys

import obslib

MAX_SLOWDOWN = 3.0
MIN_SIMD_SPEEDUP = 1.0
#: Allowed fractional drop in sharded speedup_vs_1_shard at the top shard
#: count before the scaling gate fails (0.2 = 20%).
MAX_SHARDED_SPEEDUP_DROP = 0.2

#: Top-level keys of an mldcs-perf-v1 document that are not sections.
ENVELOPE_KEYS = frozenset({"schema", "mode", "threads", "provenance"})


def warn(msg):
    print(f"check_bench: WARNING: {msg}", file=sys.stderr)


def load(path):
    try:
        doc = obslib.load_json(path)
    except obslib.SchemaError as e:
        print(f"check_bench: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != obslib.PERF_SCHEMA:
        warn(f"{path}: unexpected schema {doc.get('schema')!r} "
             f"(expected {obslib.PERF_SCHEMA}); comparing anyway")
    return doc


def by_n_disks(doc, path):
    """Index the single_relay_skyline section by n_disks.

    Returns None (with a named warning) when the section is absent or
    empty — a sectioned/partial run, not a regression.  Entries missing
    the expected keys are skipped, each with its own warning.
    """
    entries = doc.get("single_relay_skyline")
    if not isinstance(entries, list) or not entries:
        warn(f"{path}: section 'single_relay_skyline' missing or empty; "
             "skipping workspace-path comparison")
        return None
    out = {}
    for i, e in enumerate(entries):
        ws = e.get("workspace") if isinstance(e, dict) else None
        n = e.get("n_disks") if isinstance(e, dict) else None
        if (n is None or not isinstance(ws, dict)
                or "ops_per_s" not in ws or "allocs_per_op" not in ws):
            warn(f"{path}: single_relay_skyline[{i}] is missing "
                 "n_disks/workspace.ops_per_s/workspace.allocs_per_op; "
                 "skipping this entry")
            continue
        out[n] = ws
    if not out:
        warn(f"{path}: no usable single_relay_skyline entries; "
             "skipping workspace-path comparison")
        return None
    return out


def report_section_inventory(baseline_doc, fresh_doc):
    """Name the section-set differences between the two documents.

    Sections only the fresh run has are schema additions still waiting
    for a regenerated baseline — informational.  Sections only the
    baseline has may be a trimmed/sectioned fresh run — a warning, like
    every other comparison this tool cannot make.
    """
    base = set(baseline_doc) - ENVELOPE_KEYS
    fresh = set(fresh_doc) - ENVELOPE_KEYS
    for name in sorted(fresh - base):
        print(f"  section '{name}': new in this run, no baseline yet "
              "(informational)")
    for name in sorted(base - fresh):
        warn(f"section '{name}' is in the baseline but absent from the "
             "fresh run")


def report_provenance_diff(baseline_doc, fresh_doc):
    """Print the provenance delta between baseline and fresh."""
    base = baseline_doc.get("provenance")
    fresh = fresh_doc.get("provenance")
    if not isinstance(fresh, dict):
        warn("fresh run has no provenance header (older perf_suite?)")
        return
    if not isinstance(base, dict):
        summary = ", ".join(f"{k}={fresh[k]}" for k in sorted(fresh))
        print(f"  provenance: {summary} (baseline has no provenance "
              "header)")
        return
    changed = [k for k in sorted(set(base) | set(fresh))
               if base.get(k) != fresh.get(k)]
    if not changed:
        print("  provenance: unchanged "
              f"(dispatch {fresh.get('dispatch', '?')}, "
              f"{fresh.get('compiler', '?')})")
        return
    for key in changed:
        print(f"  provenance: {key}: {base.get(key)!r} -> "
              f"{fresh.get(key)!r}")


def check_simd_dispatch(doc, path):
    """Gate the fresh run's single_relay_skyline_simd section.

    Returns a list of failure strings.  Two failure modes: dispatch fell
    back to scalar although wide kernels are compiled in and the CPU
    supports them, or the wide path measured slower than the pinned
    scalar reference (speedup < MIN_SIMD_SPEEDUP).  A host that has no
    wide kernels to run (not compiled, or not supported) legitimately
    reports scalar dispatch and is not gated.
    """
    failures = []
    entries = doc.get("single_relay_skyline_simd")
    if not isinstance(entries, list) or not entries:
        warn(f"{path}: section 'single_relay_skyline_simd' missing or "
             "empty; skipping SIMD dispatch gate")
        return failures
    prov = doc.get("provenance")
    prov = prov if isinstance(prov, dict) else {}
    wide_available = (prov.get("simd_compiled") == "yes"
                      and prov.get("detected_isa") not in (None, "none"))
    for i, e in enumerate(entries):
        if (not isinstance(e, dict) or "n_disks" not in e
                or "simd_vs_scalar_speedup" not in e):
            warn(f"{path}: single_relay_skyline_simd[{i}] is missing "
                 "n_disks/simd_vs_scalar_speedup; skipping this entry")
            continue
        n = e["n_disks"]
        speedup = e["simd_vs_scalar_speedup"]
        dispatch = e.get("dispatch", "?")
        status = "ok"
        if dispatch == "scalar":
            if wide_available:
                failures.append(
                    f"n_disks={n}: dispatch fell back to scalar although "
                    f"{prov.get('detected_isa')} kernels are compiled in "
                    "and supported")
                status = "FAIL"
            else:
                status = "ok (no wide kernels on this host)"
        elif speedup < MIN_SIMD_SPEEDUP:
            failures.append(
                f"n_disks={n}: {dispatch} path slower than the scalar "
                f"reference ({speedup:.2f}x, gate {MIN_SIMD_SPEEDUP}x)")
            status = "FAIL"
        print(f"  n_disks={n}: dispatch {dispatch}, "
              f"{speedup:.2f}x vs scalar [{status}]")
    return failures


def flatten(summary, prefix=""):
    """Flatten a bench_summary dict to (dotted-key, number) pairs."""
    for key, val in summary.items():
        name = f"{prefix}{key}"
        if isinstance(val, dict):
            yield from flatten(val, f"{name}.")
        elif isinstance(val, (int, float)) and not isinstance(val, bool):
            yield name, val


def flatten_strings(summary, prefix=""):
    """Flatten to (dotted-key, string) pairs — the provenance leaves.

    'source' is excluded: it names the input file and changes every run.
    """
    for key, val in summary.items():
        name = f"{prefix}{key}"
        if name == "source":
            continue
        if isinstance(val, dict):
            yield from flatten_strings(val, f"{name}.")
        elif isinstance(val, str):
            yield name, val


def read_history_previous(path):
    """Return the last valid history entry, or None.  History problems
    are warnings: a corrupt longitudinal record must not gate the
    current run."""
    previous = None
    try:
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    parsed = json.loads(line)
                except ValueError:
                    warn(f"{path}:{lineno}: skipping unparseable history "
                         "line")
                    continue
                try:
                    previous = obslib.check_history_entry(
                        parsed, f"{path}:{lineno}")
                except obslib.SchemaError as e:
                    warn(f"skipping malformed history line: {e}")
    except FileNotFoundError:
        pass
    except OSError as e:
        warn(f"cannot read {path}: {e}")
    return previous


def check_sharded_scaling(fresh_doc, fresh_path, reference, ref_label):
    """Gate sharded_mobility scaling against a reference summary.

    `reference` is a bench_summary-shaped dict — the last valid
    BENCH_history.jsonl entry when a history file is given, else the
    baseline document's own summary.  Per deployment size, the fresh
    speedup_vs_1_shard at the top shard count must not drop more than
    MAX_SHARDED_SPEEDUP_DROP below the reference.  Sizes the reference
    never measured, or a host with fewer cores than the top shard count
    (where the curve measures oversubscription, not scaling — see
    provenance.hardware_concurrency), are skipped with a warning.
    """
    failures = []
    summary = obslib.bench_summary(fresh_doc)
    fresh_speedups = summary.get("sharded_speedup_vs_1_shard")
    if not isinstance(fresh_speedups, dict) or not fresh_speedups:
        warn(f"{fresh_path}: section 'sharded_mobility' missing or empty; "
             "skipping sharded scaling gate")
        return failures
    top_shards = summary.get("sharded_top_shards", {})
    prov = fresh_doc.get("provenance")
    hw = (prov.get("hardware_concurrency")
          if isinstance(prov, dict) else None)
    ref_speedups = {}
    if isinstance(reference, dict):
        raw = reference.get("sharded_speedup_vs_1_shard")
        if isinstance(raw, dict):
            # History entries round-trip through JSON, where int keys
            # become strings; normalize both sides.
            ref_speedups = {str(k): v for k, v in raw.items()}
    for nodes, speedup in sorted(fresh_speedups.items(),
                                 key=lambda kv: str(kv[0])):
        shards = top_shards.get(nodes)
        if isinstance(hw, (int, float)) and isinstance(shards, (int, float)) \
                and hw < shards:
            print(f"  sharded n={nodes}: {speedup:.2f}x at {shards} shards "
                  f"[skipped: host has {int(hw)} core(s)]")
            continue
        prev = ref_speedups.get(str(nodes))
        if not isinstance(prev, (int, float)) or prev <= 0:
            warn(f"sharded n={nodes}: no reference speedup in {ref_label}; "
                 "skipping")
            continue
        floor = prev * (1.0 - MAX_SHARDED_SPEEDUP_DROP)
        status = "ok"
        if speedup < floor:
            failures.append(
                f"sharded n={nodes}: speedup_vs_1_shard at {shards} shards "
                f"dropped {prev:.2f}x -> {speedup:.2f}x (gate: >= "
                f"{floor:.2f}x, {ref_label})")
            status = "FAIL"
        print(f"  sharded n={nodes}: {speedup:.2f}x at {shards} shards "
              f"(reference {prev:.2f}x) [{status}]")
    return failures


def update_history(path, fresh_doc, fresh_path, previous):
    """Append the fresh run's summary to the history file and print
    deltas against `previous` (the last valid entry, already read)."""
    summary = obslib.bench_summary(fresh_doc)
    entry = {"source": fresh_path, **summary}
    try:
        obslib.check_history_entry(entry, fresh_path)
    except obslib.SchemaError as e:
        warn(f"not appending: this run's summary is malformed: {e}")
        return
    try:
        with open(path, "a", encoding="utf-8") as f:
            f.write(json.dumps(entry, sort_keys=True) + "\n")
    except OSError as e:
        warn(f"cannot append to {path}: {e}")
        return
    print(f"check_bench: history: appended entry to {path}")

    # Observability provenance is always named, not only on change: a
    # history line recorded with the introspection server on or a blackbox
    # armed measured a (slightly) instrumented run, and whoever reads the
    # longitudinal record needs that attribution next to the numbers.
    prov = summary.get("provenance")
    if isinstance(prov, dict):
        obs_keys = {k: prov[k] for k in ("introspect", "blackbox")
                    if k in prov}
        if obs_keys:
            readout = ", ".join(f"{k}={v}" for k, v in sorted(
                obs_keys.items()))
            print(f"  observability: {readout}")

    if previous is None:
        print("check_bench: history: first entry, no deltas")
        return
    prev = dict(flatten(previous))
    for name, val in flatten(summary):
        if name not in prev:
            print(f"  {name}: {val:.4g} (new)")
            continue
        old = prev[name]
        if old == 0:
            delta = "n/a"
        else:
            delta = f"{100.0 * (val - old) / old:+.1f}%"
        print(f"  {name}: {old:.4g} -> {val:.4g} ({delta})")
    # String leaves (provenance: compiler, flags, dispatch) only print
    # when they differ — the attribution trail for any numeric jump.
    prev_strings = dict(flatten_strings(previous))
    for name, val in flatten_strings(summary):
        old = prev_strings.get(name)
        if old is None:
            print(f"  {name}: {val} (new)")
        elif old != val:
            print(f"  {name}: {old} -> {val} (changed)")


def main():
    parser = argparse.ArgumentParser(
        description="Gate a fresh perf run against a baseline.")
    parser.add_argument("baseline", help="checked-in mldcs-perf-v1 JSON")
    parser.add_argument("fresh", help="freshly measured mldcs-perf-v1 JSON")
    parser.add_argument("--history", metavar="FILE.jsonl",
                        help="append the fresh summary here and print "
                             "deltas vs the previous entry")
    args = parser.parse_args()

    fresh_doc = load(args.fresh)
    baseline_doc = load(args.baseline)
    baseline = by_n_disks(baseline_doc, args.baseline)
    fresh = by_n_disks(fresh_doc, args.fresh)

    report_section_inventory(baseline_doc, fresh_doc)
    report_provenance_diff(baseline_doc, fresh_doc)

    failures = []
    if baseline is None or fresh is None:
        print("check_bench: OK (nothing comparable; see warnings)")
    else:
        for n, base in sorted(baseline.items()):
            cur = fresh.get(n)
            if cur is None:
                # A fresh run that measured fewer sizes (different mode or
                # a trimmed sweep) is a coverage gap, not a slowdown.
                warn(f"n_disks={n}: in baseline but not in fresh run; "
                     "skipping")
                continue
            ratio = base["ops_per_s"] / cur["ops_per_s"]
            status = "ok"
            if cur["ops_per_s"] < base["ops_per_s"] / MAX_SLOWDOWN:
                failures.append(
                    f"n_disks={n}: throughput collapsed {ratio:.2f}x "
                    f"({base['ops_per_s']:.0f} -> {cur['ops_per_s']:.0f} "
                    "ops/s)")
                status = "FAIL"
            if cur["allocs_per_op"] > base["allocs_per_op"]:
                failures.append(
                    f"n_disks={n}: workspace path now allocates "
                    f"({base['allocs_per_op']} -> {cur['allocs_per_op']} "
                    f"allocs/op)")
                status = "FAIL"
            print(f"  n_disks={n}: {cur['ops_per_s']:.0f} ops/s "
                  f"(baseline/{ratio:.2f}), {cur['allocs_per_op']} "
                  f"allocs/op [{status}]")

    failures += check_simd_dispatch(fresh_doc, args.fresh)

    previous = read_history_previous(args.history) if args.history else None
    if previous is not None:
        reference, ref_label = previous, f"history {args.history}"
    else:
        reference = obslib.bench_summary(baseline_doc)
        ref_label = f"baseline {args.baseline}"
    failures += check_sharded_scaling(fresh_doc, args.fresh, reference,
                                      ref_label)

    if args.history:
        update_history(args.history, fresh_doc, args.fresh, previous)

    if failures:
        print("check_bench: REGRESSION", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    if baseline is not None and fresh is not None:
        print("check_bench: OK "
              f"(workspace path within {MAX_SLOWDOWN}x of baseline, "
              "no allocation regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
