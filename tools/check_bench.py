#!/usr/bin/env python3
"""Compare a fresh perf-suite run against a checked-in baseline.

Usage: tools/check_bench.py BASELINE.json FRESH.json

The comparison is deliberately coarse — CI runners are noisy, and a quick
run has a 10x smaller time budget than the checked-in full run — so only
two failure modes are flagged, both on the allocation-free workspace path
of the single_relay_skyline section (matched by n_disks):

  * throughput collapse: fresh ops_per_s below baseline/3
  * any allocation regression: allocs_per_op above the baseline (the
    workspace engine is allocation-free by design; even 1 alloc/op means
    the scratch-reuse contract broke)

A missing or renamed section/field (e.g. a fresh run produced with
`perf_suite --section ...`, or an older baseline from before a schema
addition) is a named WARNING, not a failure: the comparison that cannot
be made is skipped and the exit status stays 0.  Only measured
regressions exit 1.

Exit status: 0 clean (possibly with warnings), 1 regression,
2 usage/unreadable-input error.
"""

import json
import sys

MAX_SLOWDOWN = 3.0


def warn(msg):
    print(f"check_bench: WARNING: {msg}", file=sys.stderr)


def load(path):
    try:
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
    except (OSError, ValueError) as e:
        print(f"check_bench: cannot read {path}: {e}", file=sys.stderr)
        sys.exit(2)
    if doc.get("schema") != "mldcs-perf-v1":
        warn(f"{path}: unexpected schema {doc.get('schema')!r} "
             "(expected mldcs-perf-v1); comparing anyway")
    return doc


def by_n_disks(doc, path):
    """Index the single_relay_skyline section by n_disks.

    Returns None (with a named warning) when the section is absent or
    empty — a sectioned/partial run, not a regression.  Entries missing
    the expected keys are skipped, each with its own warning.
    """
    entries = doc.get("single_relay_skyline")
    if not isinstance(entries, list) or not entries:
        warn(f"{path}: section 'single_relay_skyline' missing or empty; "
             "skipping workspace-path comparison")
        return None
    out = {}
    for i, e in enumerate(entries):
        ws = e.get("workspace") if isinstance(e, dict) else None
        n = e.get("n_disks") if isinstance(e, dict) else None
        if (n is None or not isinstance(ws, dict)
                or "ops_per_s" not in ws or "allocs_per_op" not in ws):
            warn(f"{path}: single_relay_skyline[{i}] is missing "
                 "n_disks/workspace.ops_per_s/workspace.allocs_per_op; "
                 "skipping this entry")
            continue
        out[n] = ws
    if not out:
        warn(f"{path}: no usable single_relay_skyline entries; "
             "skipping workspace-path comparison")
        return None
    return out


def main():
    if len(sys.argv) != 3:
        print(__doc__.strip(), file=sys.stderr)
        return 2

    baseline = by_n_disks(load(sys.argv[1]), sys.argv[1])
    fresh = by_n_disks(load(sys.argv[2]), sys.argv[2])
    if baseline is None or fresh is None:
        print("check_bench: OK (nothing comparable; see warnings)")
        return 0

    failures = []
    for n, base in sorted(baseline.items()):
        cur = fresh.get(n)
        if cur is None:
            # A fresh run that measured fewer sizes (different mode or a
            # trimmed sweep) is a coverage gap, not a slowdown.
            warn(f"n_disks={n}: in baseline but not in fresh run; skipping")
            continue
        ratio = base["ops_per_s"] / cur["ops_per_s"]
        status = "ok"
        if cur["ops_per_s"] < base["ops_per_s"] / MAX_SLOWDOWN:
            failures.append(
                f"n_disks={n}: throughput collapsed {ratio:.2f}x "
                f"({base['ops_per_s']:.0f} -> {cur['ops_per_s']:.0f} ops/s)")
            status = "FAIL"
        if cur["allocs_per_op"] > base["allocs_per_op"]:
            failures.append(
                f"n_disks={n}: workspace path now allocates "
                f"({base['allocs_per_op']} -> {cur['allocs_per_op']} "
                f"allocs/op)")
            status = "FAIL"
        print(f"  n_disks={n}: {cur['ops_per_s']:.0f} ops/s "
              f"(baseline/{ratio:.2f}), {cur['allocs_per_op']} allocs/op "
              f"[{status}]")

    if failures:
        print("check_bench: REGRESSION", file=sys.stderr)
        for f in failures:
            print(f"  {f}", file=sys.stderr)
        return 1
    print("check_bench: OK "
          f"(workspace path within {MAX_SLOWDOWN}x of baseline, "
          "no allocation regressions)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
